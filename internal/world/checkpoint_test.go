package world

import (
	"context"
	"errors"
	"io"
	"testing"

	"slmob/internal/snap"
	"slmob/internal/trace"
)

// drain collects every remaining snapshot of a source.
func drain(t *testing.T, src *Source) []trace.Snapshot {
	t.Helper()
	var out []trace.Snapshot
	for {
		snap, err := src.Next(context.Background())
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, snap.Clone())
	}
}

// TestSourceCheckpointResumesBitIdentical: a source checkpointed
// mid-stream and restored onto a fresh source continues the exact
// snapshot sequence — every avatar position, seated flag, and arrival
// draw — without replaying the prefix.
func TestSourceCheckpointResumesBitIdentical(t *testing.T) {
	scn := DanceIsland(33)
	scn.Duration = 1200

	whole, err := NewSource(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	full := drain(t, whole)

	src, err := NewSource(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	const cut = 60
	for i := 0; i < cut; i++ {
		if _, err := src.Next(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	state, err := src.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := NewSource(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	rest := drain(t, resumed)
	if len(rest) != len(full)-cut {
		t.Fatalf("resumed source yields %d snapshots, want %d", len(rest), len(full)-cut)
	}
	for i, snap := range rest {
		want := full[cut+i]
		if snap.T != want.T || len(snap.Samples) != len(want.Samples) {
			t.Fatalf("snapshot %d: t=%d n=%d, want t=%d n=%d",
				i, snap.T, len(snap.Samples), want.T, len(want.Samples))
		}
		for j, s := range snap.Samples {
			if s != want.Samples[j] {
				t.Fatalf("snapshot %d sample %d = %+v, want %+v", i, j, s, want.Samples[j])
			}
		}
	}
}

// TestSourceCheckpointSeated: seated avatars (seat index occupancy)
// survive the round trip — the state the transfer capsule alone does not
// carry.
func TestSourceCheckpointSeated(t *testing.T) {
	scn := DanceIsland(7) // the discotheque: AllowSit with many sit spots
	scn.Duration = 3600
	src, err := NewSource(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Run until someone is seated.
	seatedAt := -1
	for i := 0; i < 300; i++ {
		snap, err := src.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snap.Samples {
			if s.Seated {
				seatedAt = i
			}
		}
		if seatedAt >= 0 {
			break
		}
	}
	if seatedAt < 0 {
		t.Skip("no avatar sat down in the probe window")
	}
	state, err := src.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewSource(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	seats := 0
	for _, a := range resumed.sim.avatars {
		if a.phase == phaseSeated {
			if a.seat < 0 {
				t.Error("seated avatar restored without a seat")
			}
			seats++
		}
	}
	if seats == 0 {
		t.Error("no seated avatar survived the round trip")
	}
}

// TestSourceRestoreRejects: mismatched scenarios and corrupted blobs are
// errors, never silent acceptance or panics.
func TestSourceRestoreRejects(t *testing.T) {
	scn := DanceIsland(1)
	scn.Duration = 600
	src, err := NewSource(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	state, err := src.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	// Different seed.
	other := DanceIsland(2)
	other.Duration = 600
	wrong, err := NewSource(other, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.RestoreState(state); err == nil {
		t.Error("restore accepted a checkpoint from a different seed")
	}
	// Different tau.
	wrongTau, err := NewSource(scn, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongTau.RestoreState(state); err == nil {
		t.Error("restore accepted a checkpoint with a different tau")
	}
	// Corruption: flipped byte must be a typed snap error.
	flipped := append([]byte(nil), state...)
	flipped[len(flipped)/2] ^= 0x10
	fresh, err := NewSource(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	var se *snap.Error
	if err := fresh.RestoreState(flipped); !errors.As(err, &se) {
		t.Errorf("corrupted restore: err = %v, want *snap.Error", err)
	}
	for _, cut := range []int{0, 3, len(state) / 2} {
		if err := fresh.RestoreState(state[:cut]); !errors.As(err, &se) {
			t.Errorf("truncated restore (%d bytes): err = %v, want *snap.Error", cut, err)
		}
	}
}
