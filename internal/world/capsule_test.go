package world

import (
	"testing"

	"slmob/internal/geom"
	"slmob/internal/rng"
	"slmob/internal/trace"
)

// TestAvatarCapsuleRoundTrip: every field the destination needs — and
// the avatar's personal random stream — must survive the wire.
func TestAvatarCapsuleRoundTrip(t *testing.T) {
	src := rng.New(99)
	for i := 0; i < 1000; i++ {
		src.Uint64() // advance mid-stream
	}
	a := &avatar{
		id:            trace.AvatarID(1<<40 | 1234),
		pos:           geom.V(12.25, 200.5, 1.75),
		rng:           src,
		phase:         phaseTravel,
		target:        geom.V(255.5, 0.25, 0),
		speed:         3.3125,
		pauseUntil:    77777,
		loginT:        123,
		logoutAt:      99999,
		anchor:        geom.V(1, 2, 3),
		wanderer:      true,
		wanderLegs:    4,
		firstLeg:      true,
		seat:          2, // not carried: in-transit avatars hold no seat
		crossTo:       1, // not carried: arrival placement resets it
		movingSecs:    456,
		travelled:     1234.0625,
		investigating: true,
	}
	b, err := decodeAvatar(encodeAvatar(a))
	if err != nil {
		t.Fatal(err)
	}
	if b.id != a.id || b.pos != a.pos || b.phase != a.phase || b.target != a.target ||
		b.speed != a.speed || b.pauseUntil != a.pauseUntil || b.loginT != a.loginT ||
		b.logoutAt != a.logoutAt || b.anchor != a.anchor || b.wanderer != a.wanderer ||
		b.wanderLegs != a.wanderLegs || b.firstLeg != a.firstLeg ||
		b.movingSecs != a.movingSecs || b.travelled != a.travelled ||
		b.investigating != a.investigating {
		t.Errorf("decoded avatar = %+v, want %+v", b, a)
	}
	if b.seat != -1 || b.crossTo != -1 {
		t.Errorf("seat/crossTo = %d/%d, want -1/-1", b.seat, b.crossTo)
	}
	// The random stream continues exactly where the source left it.
	for i := 0; i < 16; i++ {
		want := a.rng.Uint64()
		if got := b.rng.Uint64(); got != want {
			t.Fatalf("rng draw %d = %d, want %d", i, got, want)
		}
	}
}

// TestCapsuleDecodeRejectsGarbage covers the defensive paths.
func TestCapsuleDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeAvatar(nil); err == nil {
		t.Error("nil capsule accepted")
	}
	if _, err := decodeAvatar(make([]byte, capsuleSize-1)); err == nil {
		t.Error("short capsule accepted")
	}
	bad := encodeAvatar(&avatar{rng: rng.New(1), seat: -1, crossTo: -1})
	bad[0] = 99
	if _, err := decodeAvatar(bad); err == nil {
		t.Error("bad version accepted")
	}
	bad = encodeAvatar(&avatar{rng: rng.New(1), seat: -1, crossTo: -1})
	bad[1+8+24] = 7 // phase byte out of range
	if _, err := decodeAvatar(bad); err == nil {
		t.Error("bad phase accepted")
	}
}

// TestStepPendingMatchesStep: driving an estate through the routed
// transfer path — encode, inject the decoded copy, resolve — must be
// bit-identical to the in-process Step, tick for tick. This is the
// in-memory version of the estate server's network handoff loop.
func TestStepPendingMatchesStep(t *testing.T) {
	cfg := PaperEstate(77)
	cfg.Duration = 2400
	cfg.CrossProb = 0.004
	cfg.TeleportProb = 0.001

	local, err := NewEstateSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := NewEstateSim(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var bufA, bufB []AvatarState
	for step := int64(0); step < cfg.Duration; step++ {
		local.Step()
		transfers := routed.StepPending()
		for i, tr := range transfers {
			accepted, err := routed.Inject(tr)
			if err != nil {
				t.Fatalf("inject at t=%d: %v", routed.Time(), err)
			}
			routed.ResolveTransfer(i, accepted)
		}
		if step%100 != 0 {
			continue
		}
		for ri := 0; ri < local.NumRegions(); ri++ {
			bufA = local.Region(ri).ResidentStates(bufA)
			bufB = routed.Region(ri).ResidentStates(bufB)
			if len(bufA) != len(bufB) {
				t.Fatalf("t=%d region %d: %d residents vs %d", local.Time(), ri, len(bufA), len(bufB))
			}
			for k := range bufA {
				if bufA[k] != bufB[k] {
					t.Fatalf("t=%d region %d: resident %d = %+v vs %+v",
						local.Time(), ri, k, bufA[k], bufB[k])
				}
			}
		}
	}
	if local.Crossings() != routed.Crossings() || local.Teleports() != routed.Teleports() ||
		local.BlockedHandoffs() != routed.BlockedHandoffs() {
		t.Errorf("counters: local %d/%d/%d, routed %d/%d/%d",
			local.Crossings(), local.Teleports(), local.BlockedHandoffs(),
			routed.Crossings(), routed.Teleports(), routed.BlockedHandoffs())
	}
	if routed.Crossings() == 0 || routed.Teleports() == 0 {
		t.Error("scenario exercised no handoffs; parity is vacuous")
	}
}

// TestInjectValidation: transfers with impossible routes are protocol
// errors, not silent corruption.
func TestInjectValidation(t *testing.T) {
	cfg := PaperEstate(1)
	cfg.Duration = 600
	est, err := NewEstateSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capsule := encodeAvatar(&avatar{rng: rng.New(5), seat: -1, crossTo: -1})
	cases := []Transfer{
		{From: -1, To: 1, Avatar: capsule},
		{From: 0, To: 3, Avatar: capsule},
		{From: 1, To: 1, Avatar: capsule},
		{From: 0, To: 2, Avatar: capsule}, // walk across no shared border
		{From: 0, To: 1, Avatar: []byte{1, 2, 3}},
	}
	for i, tr := range cases {
		if _, err := est.Inject(tr); err == nil {
			t.Errorf("case %d: invalid transfer %+v accepted", i, tr)
		}
	}
	// A teleport may cross the whole grid.
	if _, err := est.Inject(Transfer{From: 0, To: 2, Teleport: true, Avatar: capsule}); err != nil {
		t.Errorf("teleport 0->2 rejected: %v", err)
	}
}
