package world

import (
	"fmt"
	"strconv"

	"slmob/internal/trace"
)

// Collect runs a fresh simulation of the scenario and samples the land
// every tau seconds, exactly as the paper's crawler did (τ = 10 s). This
// is the in-process fast path used by the experiment harness and the
// benchmarks; cmd/slcrawl produces the same traces over the wire protocol.
//
// Seated avatars keep their true position in the returned trace along
// with the Seated flag; the wire-protocol path degrades them to the
// authentic {0,0,0} sentinel instead.
func Collect(scn Scenario, tau int64) (*trace.Trace, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("world: non-positive tau %d", tau)
	}
	sim, err := NewSim(scn)
	if err != nil {
		return nil, err
	}
	tr := trace.New(scn.Land.Name, tau)
	tr.Meta["monitor"] = "in-process"
	tr.Meta["seed"] = strconv.FormatUint(scn.Seed, 10)
	tr.Meta["model"] = scn.Model.String()
	var buf []AvatarState
	for t := tau; t <= scn.Duration; t += tau {
		sim.RunUntil(t)
		buf = sim.ResidentStates(buf)
		snap := trace.Snapshot{T: t, Samples: make([]trace.Sample, len(buf))}
		for i, st := range buf {
			snap.Samples[i] = trace.Sample{ID: st.ID, Pos: st.Pos, Seated: st.Seated}
		}
		if err := tr.Append(snap); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
