package world

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"slmob/internal/trace"
)

// Source streams τ-sampled snapshots out of a running in-process
// simulation: the streaming producer behind the experiment harness and
// the benchmarks. Each Next call advances the simulation by tau seconds
// and observes the land, so memory stays constant no matter how long the
// measurement runs; cmd/slcrawl produces the same snapshots over the wire
// protocol.
//
// Seated avatars keep their true position in the emitted samples along
// with the Seated flag; the wire-protocol path degrades them to the
// authentic {0,0,0} sentinel instead.
type Source struct {
	sim *Sim
	tau int64
	buf []AvatarState
}

// NewSource validates the scenario, spawns the simulation, and returns a
// source that yields one snapshot every tau simulated seconds until the
// scenario duration elapses.
func NewSource(scn Scenario, tau int64) (*Source, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("world: non-positive tau %d", tau)
	}
	sim, err := NewSim(scn)
	if err != nil {
		return nil, err
	}
	return &Source{sim: sim, tau: tau}, nil
}

// Sim exposes the underlying simulation (ground-truth inspection).
func (s *Source) Sim() *Sim { return s.sim }

// Info reports the monitored land's provenance.
func (s *Source) Info() trace.Info {
	scn := s.sim.Scenario()
	return trace.Info{
		Land: scn.Land.Name,
		Tau:  s.tau,
		Meta: map[string]string{
			"monitor": "in-process",
			"seed":    strconv.FormatUint(scn.Seed, 10),
			"model":   scn.Model.String(),
			"size":    strconv.FormatFloat(scn.Land.Size, 'g', -1, 64),
		},
	}
}

// Next advances the simulation one snapshot period and samples the land.
// It returns io.EOF once the scenario duration has been observed and
// ctx.Err() promptly after cancellation.
func (s *Source) Next(ctx context.Context) (trace.Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return trace.Snapshot{}, err
	}
	next := s.sim.Time() + s.tau
	if next > s.sim.Scenario().Duration {
		return trace.Snapshot{}, io.EOF
	}
	s.sim.RunUntil(next)
	s.buf = s.sim.ResidentStates(s.buf)
	snap := trace.Snapshot{T: next, Samples: make([]trace.Sample, len(s.buf))}
	for i, st := range s.buf {
		snap.Samples[i] = trace.Sample{ID: st.ID, Pos: st.Pos, Seated: st.Seated}
	}
	return snap, nil
}

// Collect runs a fresh simulation of the scenario and materialises the
// full τ-sampled trace, exactly as the paper's crawler did (τ = 10 s).
//
// Deprecated: Collect holds the whole trace in memory; stream through
// NewSource instead when the consumer is incremental.
func Collect(scn Scenario, tau int64) (*trace.Trace, error) {
	src, err := NewSource(scn, tau)
	if err != nil {
		return nil, err
	}
	return trace.Collect(context.Background(), src, "", 0)
}
