package world

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"slmob/internal/fanout"
	"slmob/internal/geom"
	"slmob/internal/rng"
	"slmob/internal/trace"
)

// EstateConfig describes a multi-region estate: an R×C grid of lands
// ("regions", in Second Life's terms) advancing on one shared clock, the
// contiguous-world topology the live service actually had and the paper's
// three isolated islands abstracted away. Avatars move between regions two
// ways, both governed by estate-level probabilities: by walking across a
// shared border (the avatar is handed off to the neighbour with its
// position re-based into the neighbour's coordinates) and by teleporting
// to a point of interest in another region.
type EstateConfig struct {
	// Name labels the estate ("Paper Archipelago", "Mainland").
	Name string
	// Rows and Cols shape the grid; region (row, col) is
	// Regions[row*Cols+col] and covers global coordinates
	// [col·S, (col+1)·S) × [row·S, (row+1)·S) for region size S.
	Rows, Cols int
	// Regions holds one scenario per region, row-major. All lands must
	// share one Size so the grid tiles; per-region behaviour, churn, and
	// seeds are free.
	Regions []Scenario
	// CrossProb is the per-second probability that a paused avatar departs
	// for a uniformly chosen neighbouring region by walking across the
	// shared border. Zero disables walking handoffs.
	CrossProb float64
	// TeleportProb is the per-second probability that a paused avatar
	// teleports to a POI in a uniformly chosen other region. Zero
	// disables teleports.
	TeleportProb float64
	// Seed drives the estate-level decision stream (who crosses where);
	// region simulations keep their own scenario seeds.
	Seed uint64
	// Duration of the shared clock in seconds; zero adopts the first
	// region's scenario duration.
	Duration int64
	// SimWorkers is how many goroutines step regions concurrently each
	// tick. Region simulations are independent within a tick — each owns
	// its rng streams and avatar set — so the worker count never changes
	// results, only wall time; the estate-level decision sweep stays
	// serial either way. Values below 2 select the serial loop.
	SimWorkers int
}

// SingleRegionEstate wraps one scenario as a 1×1 estate: the degenerate
// grid, whose trace is bit-identical to the single-land pipeline's.
func SingleRegionEstate(scn Scenario) EstateConfig {
	return EstateConfig{
		Name:    scn.Land.Name,
		Rows:    1,
		Cols:    1,
		Regions: []Scenario{scn},
		Seed:    scn.Seed,
	}
}

// RegionSize returns the shared region edge length.
func (c EstateConfig) RegionSize() float64 {
	if len(c.Regions) == 0 {
		return 0
	}
	return c.Regions[0].Land.Size
}

// RegionOrigin returns region i's offset in estate-global coordinates.
func (c EstateConfig) RegionOrigin(i int) geom.Vec {
	s := c.RegionSize()
	return geom.V2(float64(i%c.Cols)*s, float64(i/c.Cols)*s)
}

// EffectiveDuration returns the shared-clock duration with the default
// applied.
func (c EstateConfig) EffectiveDuration() int64 {
	if c.Duration > 0 {
		return c.Duration
	}
	if len(c.Regions) > 0 {
		return c.Regions[0].Duration
	}
	return 0
}

// Validate checks the estate for structural problems, including every
// region scenario.
func (c EstateConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("world: estate needs a name")
	}
	if c.Rows < 1 || c.Cols < 1 {
		return fmt.Errorf("world: estate %q has non-positive grid %dx%d", c.Name, c.Rows, c.Cols)
	}
	if len(c.Regions) != c.Rows*c.Cols {
		return fmt.Errorf("world: estate %q has %d regions, want %d (%dx%d)",
			c.Name, len(c.Regions), c.Rows*c.Cols, c.Rows, c.Cols)
	}
	if c.CrossProb < 0 || c.CrossProb > 1 {
		return fmt.Errorf("world: estate %q cross probability %v out of [0,1]", c.Name, c.CrossProb)
	}
	if c.TeleportProb < 0 || c.TeleportProb > 1 {
		return fmt.Errorf("world: estate %q teleport probability %v out of [0,1]", c.Name, c.TeleportProb)
	}
	if c.EffectiveDuration() <= 0 {
		return fmt.Errorf("world: estate %q has no duration", c.Name)
	}
	size := c.RegionSize()
	names := make(map[string]struct{}, len(c.Regions))
	for i, scn := range c.Regions {
		if err := scn.Validate(); err != nil {
			return fmt.Errorf("world: estate %q region %d: %w", c.Name, i, err)
		}
		if scn.Land.Size != size {
			return fmt.Errorf("world: estate %q region %q size %v != grid size %v",
				c.Name, scn.Land.Name, scn.Land.Size, size)
		}
		if _, dup := names[scn.Land.Name]; dup {
			return fmt.Errorf("world: estate %q has duplicate region name %q", c.Name, scn.Land.Name)
		}
		names[scn.Land.Name] = struct{}{}
	}
	return nil
}

// regionIDBits namespaces avatar IDs: region i assigns IDs offset by
// i·2^40, so identities stay globally unique across handoffs while
// region 0 — and with it every 1×1 estate — keeps the exact IDs of the
// single-land pipeline.
const regionIDBits = 40

// pendingMove is one avatar leaving its region this tick, collected
// during the decision sweep and applied afterwards so region populations
// are never mutated mid-iteration.
type pendingMove struct {
	from, to int
	a        *avatar
	teleport bool
}

// EstateSim advances every region of an estate in lockstep and performs
// the cross-border handoffs between them. Like Sim, it is not safe for
// concurrent use: with cfg.SimWorkers > 1 the region steps inside one
// tick fan out across a persistent worker pool, but the estate itself
// still expects a single driving goroutine.
type EstateSim struct {
	cfg  EstateConfig
	size float64
	sims []*Sim
	t    int64
	rng  *rng.Source

	crossings int
	teleports int
	blocked   int

	moves []pendingMove

	// pool steps regions concurrently (nil when serial); stepJob is the
	// hoisted dispatch closure so per-tick fanout allocates nothing.
	pool    *fanout.Pool
	stepJob func(i int)
}

// NewEstateSim validates the estate and builds one simulation per region,
// each in its own avatar-ID namespace.
func NewEstateSim(cfg EstateConfig) (*EstateSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &EstateSim{
		cfg:  cfg,
		size: cfg.RegionSize(),
		rng:  rng.New(cfg.Seed).Split("estate"),
	}
	for i, scn := range cfg.Regions {
		sim, err := newSimWithIDBase(scn, uint64(i)<<regionIDBits)
		if err != nil {
			return nil, err
		}
		e.sims = append(e.sims, sim)
	}
	if workers := cfg.SimWorkers; workers > 1 && len(e.sims) > 1 {
		if workers > len(e.sims) {
			workers = len(e.sims)
		}
		e.pool = fanout.NewPool(workers)
		e.stepJob = func(i int) { e.sims[i].Step() }
	}
	return e, nil
}

// StepWorkers reports the estate's effective step concurrency.
func (e *EstateSim) StepWorkers() int { return e.pool.Workers() }

// StepPool exposes the estate's persistent step pool — nil when the
// estate steps serially — so the serving layer can fan its own
// per-tick phases across the same parked workers instead of keeping a
// second pool. The pool is single-dispatcher: only the goroutine
// driving Step may use it.
func (e *EstateSim) StepPool() *fanout.Pool { return e.pool }

// Close winds down the estate's step workers; safe (and a no-op) on a
// serial estate.
func (e *EstateSim) Close() { e.pool.Close() }

// Time returns the shared clock in seconds.
func (e *EstateSim) Time() int64 { return e.t }

// Config returns the estate configuration.
func (e *EstateSim) Config() EstateConfig { return e.cfg }

// NumRegions returns the number of regions.
func (e *EstateSim) NumRegions() int { return len(e.sims) }

// Region returns region i's simulation for inspection. Mutating it
// directly is the caller's risk.
func (e *EstateSim) Region(i int) *Sim { return e.sims[i] }

// Origin returns region i's offset in estate-global coordinates.
func (e *EstateSim) Origin(i int) geom.Vec { return e.cfg.RegionOrigin(i) }

// Population returns the total resident avatars across all regions.
func (e *EstateSim) Population() int {
	n := 0
	for _, s := range e.sims {
		n += s.Population()
	}
	return n
}

// Crossings returns how many walking border handoffs have completed.
func (e *EstateSim) Crossings() int { return e.crossings }

// Teleports returns how many inter-region teleports have completed.
func (e *EstateSim) Teleports() int { return e.teleports }

// BlockedHandoffs returns how many handoffs were refused because the
// destination region was at its avatar cap.
func (e *EstateSim) BlockedHandoffs() int { return e.blocked }

// Transfer is one avatar handoff in wire form: the encoded capsule plus
// its routing. The estate server carries these between region servers
// over TCP; the offline simulation resolves the same moves in process
// without ever encoding them.
type Transfer struct {
	// From and To are the source and destination region indices.
	From, To int
	// Teleport distinguishes a point-of-interest teleport from a walked
	// border crossing.
	Teleport bool
	// Avatar is the encoded avatar capsule.
	Avatar []byte
}

// Step advances the whole estate by one second: every region simulation
// ticks, then pending border crossings and teleports are resolved in
// process.
func (e *EstateSim) Step() {
	if e.stepResidents() {
		e.sweep()
		for _, m := range e.moves {
			if e.admit(m.a, m.from, m.to, m.teleport) {
				e.sims[m.from].removeAvatar(m.a)
			} else {
				e.refuse(m)
			}
		}
	}
}

// StepPending advances the estate by one second but leaves this tick's
// cross-region handoffs pending, returning them in wire form (empty on
// most ticks). The caller must route each transfer to its destination —
// the estate server sends it over TCP to the destination region server,
// whose Inject admits it — and then report the outcome with
// ResolveTransfer, in slice order, before the next step.
func (e *EstateSim) StepPending() []Transfer {
	if !e.stepResidents() {
		return nil
	}
	e.sweep()
	if len(e.moves) == 0 {
		return nil
	}
	out := make([]Transfer, len(e.moves))
	for i, m := range e.moves {
		// In flight until resolved: the source region hides the avatar
		// from map observations so a poll racing the handoff cannot see
		// it on both sides of the border.
		m.a.inFlight = true
		out[i] = Transfer{From: m.from, To: m.to, Teleport: m.teleport, Avatar: encodeAvatar(m.a)}
	}
	return out
}

// Inject admits a transferred avatar into its destination region: the
// destination-side half of a networked handoff. It reports false — and
// leaves the estate untouched — when the destination is at its avatar
// cap, exactly as the in-process path refuses the move.
func (e *EstateSim) Inject(tr Transfer) (bool, error) {
	if tr.From < 0 || tr.From >= len(e.sims) || tr.To < 0 || tr.To >= len(e.sims) {
		return false, fmt.Errorf("world: transfer routes %d->%d outside the %d-region estate",
			tr.From, tr.To, len(e.sims))
	}
	if tr.From == tr.To {
		return false, fmt.Errorf("world: transfer routes region %d to itself", tr.From)
	}
	if !tr.Teleport && !e.adjacent(tr.From, tr.To) {
		return false, fmt.Errorf("world: walking transfer %d->%d crosses no shared border", tr.From, tr.To)
	}
	a, err := decodeAvatar(tr.Avatar)
	if err != nil {
		return false, err
	}
	return e.admit(a, tr.From, tr.To, tr.Teleport), nil
}

// ResolveTransfer completes pending handoff i of the slice StepPending
// returned: an accepted transfer removes the avatar from its source
// region (the destination already holds the injected copy), a refused
// one turns the avatar back exactly as the in-process path does.
func (e *EstateSim) ResolveTransfer(i int, accepted bool) {
	m := e.moves[i]
	m.a.inFlight = false
	if accepted {
		e.sims[m.from].removeAvatar(m.a)
	} else {
		e.refuse(m)
	}
}

// stepResidents advances the shared clock and every region simulation,
// reporting whether a migration sweep is due. Region steps within a
// tick are independent — each sim owns its rng streams, avatar set, and
// departure scratch — so with a pool they fan out across the parked
// workers; Pool.Run is a barrier, so the sweep that follows always sees
// every region fully stepped, and a nil pool degenerates to the serial
// region-order loop.
func (e *EstateSim) stepResidents() bool {
	e.t++
	if e.pool != nil {
		e.pool.Run(len(e.sims), e.stepJob)
	} else {
		for _, s := range e.sims {
			s.Step()
		}
	}
	return len(e.sims) > 1 && (e.cfg.CrossProb > 0 || e.cfg.TeleportProb > 0)
}

// adjacent reports whether two regions share a grid border.
func (e *EstateSim) adjacent(a, b int) bool {
	ar, ac := a/e.cfg.Cols, a%e.cfg.Cols
	br, bc := b/e.cfg.Cols, b%e.cfg.Cols
	dr, dc := ar-br, ac-bc
	return dr*dr+dc*dc == 1
}

// RunUntil advances the estate to the given shared-clock time.
func (e *EstateSim) RunUntil(t int64) {
	for e.t < t {
		e.Step()
	}
}

// neighbors appends the region indices adjacent to region ri in the grid.
func (e *EstateSim) neighbors(ri int, buf []int) []int {
	row, col := ri/e.cfg.Cols, ri%e.cfg.Cols
	buf = buf[:0]
	if row > 0 {
		buf = append(buf, ri-e.cfg.Cols)
	}
	if row < e.cfg.Rows-1 {
		buf = append(buf, ri+e.cfg.Cols)
	}
	if col > 0 {
		buf = append(buf, ri-1)
	}
	if col < e.cfg.Cols-1 {
		buf = append(buf, ri+1)
	}
	return buf
}

// borderEps keeps walking targets strictly inside the source region; the
// rebase into the neighbour clamps the residue away.
const borderEps = 0.5

// sweep runs the estate's per-tick cross-region decision pass: it
// finishes walks that reached a border and rolls teleport and crossing
// decisions for paused avatars, collecting the resulting handoffs into
// e.moves in deterministic region-major order.
func (e *EstateSim) sweep() {
	e.moves = e.moves[:0]
	var nbuf [4]int
	for ri, s := range e.sims {
		for _, a := range s.avatars {
			if a.crossTo >= 0 {
				// A crossing in flight: the sim parks arrivals in a pause
				// (or a seat) at the border, which is the handoff signal.
				if a.phase != phaseTravel {
					e.moves = append(e.moves, pendingMove{from: ri, to: a.crossTo, a: a})
				}
				continue
			}
			if a.phase != phasePause {
				continue
			}
			if e.cfg.TeleportProb > 0 && e.rng.Bool(e.cfg.TeleportProb) {
				dst := e.rng.Intn(len(e.sims) - 1)
				if dst >= ri {
					dst++
				}
				e.moves = append(e.moves, pendingMove{from: ri, to: dst, a: a, teleport: true})
				continue
			}
			if e.cfg.CrossProb > 0 && e.rng.Bool(e.cfg.CrossProb) {
				nbrs := e.neighbors(ri, nbuf[:0])
				e.beginCrossing(ri, a, nbrs[e.rng.Intn(len(nbrs))])
			}
		}
	}
}

// beginCrossing aims the avatar at the border it shares with the chosen
// neighbour; the regular travel machinery walks it there.
func (e *EstateSim) beginCrossing(ri int, a *avatar, to int) {
	target := a.pos
	switch to - ri {
	case -e.cfg.Cols: // north neighbour (lower row)
		target.Y = 0 + borderEps
	case e.cfg.Cols: // south neighbour
		target.Y = e.size - borderEps
	case -1: // west neighbour
		target.X = 0 + borderEps
	case 1: // east neighbour
		target.X = e.size - borderEps
	}
	a.beginTravel(target, e.sims[ri].scn.Behavior)
	a.crossTo = to
}

// admit places avatar a into region `to` and reports success: it
// capacity-checks the destination, re-bases the position (or rezzes the
// teleport at an attraction), and resumes the avatar's behaviour in the
// new region. The caller removes the avatar from its source afterwards;
// for networked transfers a is a decoded capsule and the source copy is
// removed by ResolveTransfer on the far side.
func (e *EstateSim) admit(a *avatar, from, to int, teleport bool) bool {
	dst := e.sims[to]
	if len(dst.avatars)+len(dst.externals) >= dst.scn.Land.EffectiveMaxAvatars() {
		return false
	}
	a.crossTo = -1
	if teleport {
		// Rez at an attraction of the destination region and resume the
		// interrupted pause there.
		pois := dst.scn.Land.POIs
		if len(pois) > 0 {
			weights := make([]float64, len(pois))
			for i, p := range pois {
				weights[i] = p.Weight
			}
			poi := pois[e.rng.Choice(weights)]
			a.pos = dst.jitter(poi.Pos, poi.Radius, e.rng)
		} else {
			a.pos = dst.uniformPoint(e.rng)
		}
		a.anchor = a.pos
		a.phase = phasePause
		a.seat = -1
		e.teleports++
	} else {
		// Walked off the edge: re-base the position into the neighbour's
		// coordinates and keep going toward a destination there.
		srcO, dstO := e.Origin(from), e.Origin(to)
		a.pos = dst.scn.Land.Bounds().Clamp(a.pos.Add(srcO.Sub(dstO)))
		a.beginTravel(dst.destinationFor(a), dst.scn.Behavior)
		e.crossings++
	}
	dst.avatars = append(dst.avatars, a)
	if n := len(dst.avatars); n > dst.peak {
		dst.peak = n
	}
	return true
}

// refuse turns a pending move back at a full destination: the avatar
// stays in its source region and — for a walked crossing — lingers at
// the border before moving on.
func (e *EstateSim) refuse(m pendingMove) {
	e.blocked++
	m.a.crossTo = -1
	if m.a.phase == phaseSeated {
		e.sims[m.from].standUp(m.a)
	}
	if !m.teleport {
		// Turned back at a full border: linger there, then move on.
		m.a.beginPause(e.t, e.sims[m.from].scn.Behavior)
	}
}

// EstateSource streams τ-sampled per-region snapshots out of a running
// estate simulation: the sharded counterpart of Source. Each NextTick
// advances the shared clock by tau seconds and observes every region.
type EstateSource struct {
	est  *EstateSim
	tau  int64
	dur  int64
	bufs [][]AvatarState
}

// NewEstateSource validates the estate, spawns its simulations, and
// returns a source that yields one tick every tau simulated seconds
// until the shared-clock duration elapses.
func NewEstateSource(cfg EstateConfig, tau int64) (*EstateSource, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("world: non-positive tau %d", tau)
	}
	est, err := NewEstateSim(cfg)
	if err != nil {
		return nil, err
	}
	return &EstateSource{
		est:  est,
		tau:  tau,
		dur:  cfg.EffectiveDuration(),
		bufs: make([][]AvatarState, len(est.sims)),
	}, nil
}

// Estate exposes the underlying estate simulation (ground-truth
// inspection: crossing counters, per-region populations).
func (s *EstateSource) Estate() *EstateSim { return s.est }

// Regions reports each region's provenance: its land name doubles as the
// region identity, its origin places it in estate-global coordinates,
// and the metadata round-trips both through trace files.
func (s *EstateSource) Regions() []trace.Info {
	infos := make([]trace.Info, len(s.est.sims))
	for i, sim := range s.est.sims {
		scn := sim.Scenario()
		origin := s.est.Origin(i)
		infos[i] = trace.Info{
			Land:   scn.Land.Name,
			Region: scn.Land.Name,
			Origin: origin,
			Tau:    s.tau,
			Meta: map[string]string{
				"monitor": "in-process",
				"estate":  s.est.cfg.Name,
				"region":  scn.Land.Name,
				"origin": strconv.FormatFloat(origin.X, 'g', -1, 64) + "," +
					strconv.FormatFloat(origin.Y, 'g', -1, 64),
				"seed":  strconv.FormatUint(scn.Seed, 10),
				"model": scn.Model.String(),
				"size":  strconv.FormatFloat(scn.Land.Size, 'g', -1, 64),
			},
		}
	}
	return infos
}

// NextTick advances the estate one snapshot period and samples every
// region. It returns io.EOF once the shared duration has been observed
// and ctx.Err() promptly after cancellation.
func (s *EstateSource) NextTick(ctx context.Context) (trace.EstateTick, error) {
	if err := ctx.Err(); err != nil {
		return trace.EstateTick{}, err
	}
	next := s.est.Time() + s.tau
	if next > s.dur {
		return trace.EstateTick{}, io.EOF
	}
	s.est.RunUntil(next)
	tick := trace.EstateTick{T: next, Regions: make([]trace.Snapshot, len(s.est.sims))}
	for i, sim := range s.est.sims {
		s.bufs[i] = sim.ResidentStates(s.bufs[i])
		snap := trace.Snapshot{T: next, Samples: make([]trace.Sample, len(s.bufs[i]))}
		for j, st := range s.bufs[i] {
			snap.Samples[j] = trace.Sample{ID: st.ID, Pos: st.Pos, Seated: st.Seated}
		}
		tick.Regions[i] = snap
	}
	return tick, nil
}
