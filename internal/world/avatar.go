package world

import (
	"slmob/internal/geom"
	"slmob/internal/rng"
	"slmob/internal/trace"
)

// phase is the avatar state-machine phase.
type phase int

const (
	phaseTravel phase = iota
	phasePause
	phaseSeated
)

// avatar is the internal per-user simulation state.
type avatar struct {
	id  trace.AvatarID
	pos geom.Vec
	rng *rng.Source

	phase      phase
	target     geom.Vec
	speed      float64
	pauseUntil int64
	loginT     int64
	logoutAt   int64

	// anchor is the pause location; micro-moves jitter around it rather
	// than random-walking away, which keeps dancers on the dance floor.
	anchor geom.Vec

	// wanderLegs counts remaining tour legs for wanderer avatars.
	wanderer   bool
	wanderLegs int

	// firstLeg marks the leg from the telehub: fresh visitors pick their
	// first destination from the land map rather than by proximity, so
	// distance-decay gravity does not apply to it.
	firstLeg bool

	// seat is the occupied sit-spot index, or -1.
	seat int

	// crossTo is the estate region index the avatar is walking a border
	// toward, or -1. Single-land simulations never set it.
	crossTo int

	// movingSecs accumulates ground-truth effective travel time.
	movingSecs int64
	// travelled accumulates ground-truth path length in metres.
	travelled float64

	// investigating is set while the avatar walks toward a suspicious
	// presence (the crawler-perturbation behaviour).
	investigating bool

	// inFlight marks an avatar whose cross-region handoff is being routed
	// over the network (between StepPending and ResolveTransfer): map
	// observations skip it, so a poll racing a handoff sees the avatar on
	// at most one side of the border, never both.
	inFlight bool
}

// AvatarState is the externally visible state of one avatar, as a monitor
// would observe it.
type AvatarState struct {
	ID  trace.AvatarID
	Pos geom.Vec
	// Seated mirrors the Second Life quirk: monitors reading the wire
	// protocol see {0,0,0} for seated avatars; the flag carries the truth.
	Seated bool
}

// pickSpeed draws a leg speed.
func (a *avatar) pickSpeed(b Behavior) float64 {
	if a.rng.Bool(b.RunProb) {
		return b.RunSpeed * a.rng.Range(0.9, 1.1)
	}
	return b.WalkSpeed * a.rng.Range(0.9, 1.1)
}

// beginTravel aims the avatar at a new target.
func (a *avatar) beginTravel(target geom.Vec, b Behavior) {
	a.phase = phaseTravel
	a.target = target
	a.speed = a.pickSpeed(b)
	a.seat = -1
	a.investigating = false
}

// beginPause halts the avatar for a bounded-Pareto duration.
func (a *avatar) beginPause(now int64, b Behavior) {
	a.phase = phasePause
	a.anchor = a.pos
	a.pauseUntil = now + int64(a.rng.BoundedPareto(b.PauseMin, b.PauseMax, b.PauseAlpha))
	a.investigating = false
}
