package world

import (
	"encoding/binary"
	"fmt"
	"math"

	"slmob/internal/geom"
	"slmob/internal/rng"
	"slmob/internal/trace"
)

// The avatar capsule is the wire form of a mid-session avatar handed off
// between the region servers of a networked estate: everything the
// destination needs to resume the avatar exactly where the source left
// it — identity, kinematic state, session timers, ground-truth odometry,
// and the avatar's personal random stream. Shipping the random state is
// what makes a networked estate bit-identical to the in-process one: the
// avatar's next destination and pause draws continue the same sequence
// on the far side of the socket.
//
// Layout (big-endian, fixed size): a version byte followed by the fields
// in declaration order. Positions are float64 — unlike the coarse map,
// a handoff must not lose precision, or the re-based trajectory diverges
// from the offline simulation.

// capsuleVersion guards the capsule layout.
const capsuleVersion = 1

// capsuleSize is the exact encoded length.
const capsuleSize = 1 + // version
	8 + // id
	3*8 + // pos
	1 + // phase
	3*8 + // target
	8 + // speed
	8 + // pauseUntil
	8 + // loginT
	8 + // logoutAt
	3*8 + // anchor
	1 + // flags (wanderer, firstLeg, investigating)
	4 + // wanderLegs
	8 + // movingSecs
	8 + // travelled
	4*8 // rng state

// encodeAvatar packs the avatar into a fresh capsule.
func encodeAvatar(a *avatar) []byte {
	buf := make([]byte, 0, capsuleSize)
	buf = append(buf, capsuleVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.id))
	buf = appendVec(buf, a.pos)
	buf = append(buf, byte(a.phase))
	buf = appendVec(buf, a.target)
	buf = binary.BigEndian.AppendUint64(buf, floatBits(a.speed))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.pauseUntil))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.loginT))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.logoutAt))
	buf = appendVec(buf, a.anchor)
	var flags byte
	if a.wanderer {
		flags |= 1
	}
	if a.firstLeg {
		flags |= 2
	}
	if a.investigating {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.wanderLegs))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.movingSecs))
	buf = binary.BigEndian.AppendUint64(buf, floatBits(a.travelled))
	st := a.rng.State()
	for _, w := range st {
		buf = binary.BigEndian.AppendUint64(buf, w)
	}
	return buf
}

// decodeAvatar unpacks a capsule into a fresh avatar. The seat and
// crossTo fields are not carried: an avatar in transit holds neither a
// seat nor a pending crossing, and arrival placement resets both.
func decodeAvatar(data []byte) (*avatar, error) {
	if len(data) != capsuleSize {
		return nil, fmt.Errorf("world: avatar capsule is %d bytes, want %d", len(data), capsuleSize)
	}
	if data[0] != capsuleVersion {
		return nil, fmt.Errorf("world: unsupported avatar capsule version %d", data[0])
	}
	d := data[1:]
	u64 := func() uint64 {
		v := binary.BigEndian.Uint64(d)
		d = d[8:]
		return v
	}
	vec := func() geom.Vec {
		return geom.V(bitsFloat(u64()), bitsFloat(u64()), bitsFloat(u64()))
	}
	a := &avatar{seat: -1, crossTo: -1}
	a.id = trace.AvatarID(u64())
	a.pos = vec()
	ph := d[0]
	d = d[1:]
	if ph > byte(phaseSeated) {
		return nil, fmt.Errorf("world: avatar capsule has unknown phase %d", ph)
	}
	a.phase = phase(ph)
	a.target = vec()
	a.speed = bitsFloat(u64())
	a.pauseUntil = int64(u64())
	a.loginT = int64(u64())
	a.logoutAt = int64(u64())
	a.anchor = vec()
	flags := d[0]
	d = d[1:]
	a.wanderer = flags&1 != 0
	a.firstLeg = flags&2 != 0
	a.investigating = flags&4 != 0
	a.wanderLegs = int(int32(binary.BigEndian.Uint32(d)))
	d = d[4:]
	a.movingSecs = int64(u64())
	a.travelled = bitsFloat(u64())
	var st [4]uint64
	for i := range st {
		st[i] = u64()
	}
	a.rng = rng.New(0)
	a.rng.Restore(st)
	return a, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

func appendVec(buf []byte, v geom.Vec) []byte {
	buf = binary.BigEndian.AppendUint64(buf, floatBits(v.X))
	buf = binary.BigEndian.AppendUint64(buf, floatBits(v.Y))
	return binary.BigEndian.AppendUint64(buf, floatBits(v.Z))
}
