package world

import (
	"fmt"

	"slmob/internal/geom"
)

// DayDuration is the paper's measurement length: 24 hours.
const DayDuration int64 = 86400

// Paper population targets (§3): unique visitors and mean concurrency for
// the three target lands, used to derive arrival rates and mean session
// durations. Exported so the experiment harness can report
// paper-vs-measured.
const (
	ApfelUniqueTarget     = 1568
	ApfelConcurrentTarget = 13.0
	DanceUniqueTarget     = 3347
	DanceConcurrentTarget = 34.0
	IsleUniqueTarget      = 2656
	IsleConcurrentTarget  = 65.0
)

// arrivalRateFor derives the Poisson rate that yields the target number of
// unique visitors over a day, accounting for the warmup population.
func arrivalRateFor(unique int, warmup int) float64 {
	return float64(unique-warmup) / float64(DayDuration)
}

// meanSessionFor derives the mean session duration that sustains the
// target concurrency at the given arrival rate (Little's law).
func meanSessionFor(concurrent float64, ratePerSec float64) float64 {
	return concurrent / ratePerSec
}

// mildDiurnal is a gentle day/night activity profile. Second Life was a
// global service, so the modulation is much flatter than a single
// timezone's: the paper's 24 h concurrency varies but never empties.
var mildDiurnal = []float64{
	0.8, 0.7, 0.6, 0.6, 0.7, 0.8, 0.9, 1.0,
	1.1, 1.1, 1.2, 1.2, 1.2, 1.2, 1.2, 1.2,
	1.3, 1.3, 1.3, 1.2, 1.1, 1.0, 0.9, 0.8,
}

// ApfelLand is the paper's out-door land: a German-speaking arena for
// newbies. Sparse population, many weak points of interest, lots of
// exploratory walking. Public land, so sensor objects expire.
func ApfelLand(seed uint64) Scenario {
	warmup := int(ApfelConcurrentTarget)
	rate := arrivalRateFor(ApfelUniqueTarget, warmup)
	mean := meanSessionFor(ApfelConcurrentTarget, rate)
	return Scenario{
		Land: LandConfig{
			Name:           "Apfel Land",
			Size:           256,
			Kind:           Public,
			ObjectLifetime: 7200,
			POIs: []POI{
				// A compact welcome arena in the land's centre — many
				// distinct spots 20-45 m apart — plus a few outlying
				// attractions. The arena keeps pairs >10 m apart most of
				// the time (P(deg=0)≈0.6) while chaining everyone within
				// 80 m; the outliers and remote telehubs produce the long
				// first-contact waits the paper reports for this land.
				{Name: "welcome plaza", Pos: geom.V2(128, 128), Radius: 12, Weight: 1.0},
				{Name: "info boards", Pos: geom.V2(104, 146), Radius: 10, Weight: 0.8},
				{Name: "shops", Pos: geom.V2(148, 142), Radius: 10, Weight: 0.8},
				{Name: "fountain", Pos: geom.V2(112, 108), Radius: 10, Weight: 0.7},
				{Name: "gallery", Pos: geom.V2(92, 128), Radius: 10, Weight: 0.7},
				{Name: "tutorial alley", Pos: geom.V2(144, 104), Radius: 10, Weight: 0.7},
				{Name: "freebie shop", Pos: geom.V2(128, 160), Radius: 10, Weight: 0.8},
				{Name: "flea market", Pos: geom.V2(160, 120), Radius: 10, Weight: 0.7},
				{Name: "biergarten", Pos: geom.V2(108, 164), Radius: 10, Weight: 0.9},
				{Name: "sandbox corner", Pos: geom.V2(210, 70), Radius: 12, Weight: 0.8},
				{Name: "lookout hill", Pos: geom.V2(36, 224), Radius: 12, Weight: 0.7},
				{Name: "pond", Pos: geom.V2(20, 150), Radius: 12, Weight: 0.7},
			},
			// Two corner telehubs ~100 m from the arena: arrivals walk for
			// half a minute before anyone is even in WiFi range, and the
			// split login stream keeps consecutive arrivals from meeting
			// at the hub itself.
			Spawns: []geom.Vec{geom.V2(248, 232), geom.V2(8, 8)},
		},
		Behavior: Behavior{
			WalkSpeed: 3.2, RunSpeed: 5.2, RunProb: 0.25,
			PauseMin: 40, PauseMax: 1800, PauseAlpha: 0.42,
			MicroMoveProb: 0.02, MicroMoveStep: 1.2,
			ExploreProb:  0.12,
			WandererFrac: 0.03, WandererLegs: 5,
			ChatProb:        0.01,
			CuriosityProb:   0.004,
			SpawnJitter:     10,
			ArrivalPauseMin: 1, ArrivalPauseMax: 4,
			ScatterLoginFrac: 0.10,
			GravityGamma:     0.9,
		},
		Session:  SessionModelWithMean(60, 14400, mean),
		Arrivals: Arrivals{RatePerSec: rate, Diurnal: mildDiurnal},
		Model:    POIGravity,
		Seed:     seed,
		Duration: DayDuration,
		Warmup:   warmup,
	}
}

// DanceIsland is the paper's in-door land: a virtual discotheque where
// most users spend most of their time on the dance floor or at the bar.
// Private land, so sensor objects cannot be deployed — only the crawler
// architecture can monitor it, as the paper found.
func DanceIsland(seed uint64) Scenario {
	warmup := int(DanceConcurrentTarget)
	rate := arrivalRateFor(DanceUniqueTarget, warmup)
	mean := meanSessionFor(DanceConcurrentTarget, rate)
	return Scenario{
		Land: LandConfig{
			Name: "Dance Island",
			Size: 256,
			Kind: Private,
			POIs: []POI{
				{Name: "dance floor", Pos: geom.V2(128, 132), Radius: 5.5, Weight: 6.0},
				{Name: "bar", Pos: geom.V2(152, 128), Radius: 5, Weight: 2.0},
				{Name: "chill lounge", Pos: geom.V2(114, 152), Radius: 6, Weight: 1.0},
				{Name: "quiet beach", Pos: geom.V2(226, 40), Radius: 7, Weight: 0.25},
			},
			Spawns: []geom.Vec{geom.V2(92, 128)},
		},
		Behavior: Behavior{
			WalkSpeed: 3.2, RunSpeed: 5.2, RunProb: 0.1,
			PauseMin: 150, PauseMax: 2400, PauseAlpha: 0.42,
			// Dance animations do not move an avatar's coordinates in
			// Second Life: dancers are nearly static, repositioning only
			// occasionally. This is what makes Dance Island contacts long
			// and inter-contacts rare-but-long in the paper.
			MicroMoveProb: 0.003, MicroMoveStep: 0.7,
			ExploreProb:  0.015,
			WandererFrac: 0.01, WandererLegs: 4,
			ChatProb:        0.02,
			CuriosityProb:   0.003,
			SpawnJitter:     5,
			ArrivalPauseMin: 5, ArrivalPauseMax: 20,
			ScatterLoginFrac: 0.1,
		},
		// Club visits shorter than two minutes are not a thing: the venue
		// is a destination, which stretches the short end of the session
		// distribution and with it the r=80 contact times.
		Session:  SessionModelWithMean(120, 14400, mean),
		Arrivals: Arrivals{RatePerSec: rate, Diurnal: mildDiurnal},
		Model:    POIGravity,
		Seed:     seed,
		Duration: DayDuration,
		Warmup:   warmup,
	}
}

// IsleOfView is the paper's event land: a St. Valentine's event drew a
// large, dense crowd with a heavy "stayer" population and a small
// population of explorers who tour the whole island (the ~2 % of users
// who travel more than 2 km).
func IsleOfView(seed uint64) Scenario {
	warmup := int(IsleConcurrentTarget)
	rate := arrivalRateFor(IsleUniqueTarget, warmup)
	mean := meanSessionFor(IsleConcurrentTarget, rate)
	// Session mixture: event stayers remain 1-3 hours; the Pareto body
	// absorbs the remaining mean mass (see DESIGN.md calibration notes).
	const stayerFrac = 0.18
	stayMean := (3600.0 + 10800.0) / 2
	bodyMean := (mean - stayerFrac*stayMean) / (1 - stayerFrac)
	s := SessionModelWithMean(60, 14400, bodyMean)
	s.StayerFrac = stayerFrac
	s.StayerMin, s.StayerMax = 3600, 10800
	return Scenario{
		Land: LandConfig{
			Name:           "Isle of View",
			Size:           256,
			Kind:           Public,
			ObjectLifetime: 3600,
			POIs: []POI{
				// The event venue is elongated (two stage wings), which
				// strings the crowd out: line-of-sight networks at r=10
				// become multi-hop chains (diameters up to ~10) while r=80
				// spans the whole venue in one hop — the diameter-shrink
				// effect of Fig. 2.
				{Name: "stage west", Pos: geom.V2(116, 140), Radius: 9, Weight: 3.0},
				{Name: "stage east", Pos: geom.V2(140, 142), Radius: 9, Weight: 3.0},
				{Name: "gift shop", Pos: geom.V2(100, 112), Radius: 8, Weight: 1.5},
				{Name: "photo spot", Pos: geom.V2(160, 118), Radius: 6, Weight: 1.0},
				{Name: "lookout bridge", Pos: geom.V2(204, 200), Radius: 8, Weight: 0.8},
				{Name: "beach", Pos: geom.V2(56, 204), Radius: 10, Weight: 0.7},
			},
			Spawns: []geom.Vec{geom.V2(122, 124)},
		},
		Behavior: Behavior{
			WalkSpeed: 3.2, RunSpeed: 5.2, RunProb: 0.2,
			PauseMin: 45, PauseMax: 3600, PauseAlpha: 0.40,
			MicroMoveProb: 0.025, MicroMoveStep: 0.8,
			ExploreProb:  0.03,
			WandererFrac: 0.05, WandererLegs: 18,
			ChatProb:        0.015,
			CuriosityProb:   0.003,
			SpawnJitter:     8,
			ArrivalPauseMin: 5, ArrivalPauseMax: 30,
			ScatterLoginFrac: 0.3,
			GravityGamma:     0.5,
		},
		Session:  s,
		Arrivals: Arrivals{RatePerSec: rate, Diurnal: mildDiurnal},
		Model:    POIGravity,
		Seed:     seed,
		Duration: DayDuration,
		Warmup:   warmup,
	}
}

// PaperLands returns the three calibrated scenarios in the paper's order.
func PaperLands(seed uint64) []Scenario {
	return []Scenario{
		ApfelLand(seed),
		DanceIsland(seed + 1),
		IsleOfView(seed + 2),
	}
}

// PaperLand returns the calibrated scenario with the given land name.
func PaperLand(name string, seed uint64) (Scenario, error) {
	switch name {
	case "apfel", "Apfel Land":
		return ApfelLand(seed), nil
	case "dance", "Dance Island":
		return DanceIsland(seed), nil
	case "isle", "Isle of View":
		return IsleOfView(seed), nil
	default:
		return Scenario{}, fmt.Errorf("world: unknown paper land %q (want apfel, dance, or isle)", name)
	}
}

// PaperEstate arranges the paper's three target lands as a 1×3 estate:
// the same calibrated populations, now joined by walkable borders and
// occasional teleports, approximating how the lands sat in the real
// service's contiguous grid rather than in isolation.
func PaperEstate(seed uint64) EstateConfig {
	return EstateConfig{
		Name:         "Paper Archipelago",
		Rows:         1,
		Cols:         3,
		Regions:      PaperLands(seed),
		CrossProb:    0.001,  // a paused avatar wanders next door every ~17 min
		TeleportProb: 0.0003, // and teleports across the estate every ~55 min
		Seed:         seed,
		Duration:     DayDuration,
	}
}

// MainlandEstate is the 4×4 sharding stress preset: sixteen regions
// cycling through the three paper-land templates, with livelier border
// crossing and teleport traffic. At full day length it simulates tens of
// thousands of avatar sessions across the grid — the workload the
// estate analyzer's parallel per-region workers are sized for.
func MainlandEstate(seed uint64) EstateConfig {
	const n = 4
	regions := make([]Scenario, 0, n*n)
	for i := 0; i < n*n; i++ {
		var scn Scenario
		switch i % 3 {
		case 0:
			scn = ApfelLand(seed + uint64(i))
		case 1:
			scn = DanceIsland(seed + uint64(i))
		default:
			scn = IsleOfView(seed + uint64(i))
		}
		scn.Land.Name = fmt.Sprintf("Mainland (%d,%d)", i/n, i%n)
		regions = append(regions, scn)
	}
	return EstateConfig{
		Name:         "Mainland",
		Rows:         n,
		Cols:         n,
		Regions:      regions,
		CrossProb:    0.002,
		TeleportProb: 0.0005,
		Seed:         seed,
		Duration:     DayDuration,
	}
}

// CityEstate is the 8×8 city-scale stress preset: sixty-four regions
// cycling through the three paper-land templates — roughly 2,400
// concurrent avatars and ~150k unique visitors over a full day — with
// brisk border-crossing and teleport traffic. This is the workload the
// allocation-free analysis core and its parallel region/range workers
// are sized for; BenchmarkP4CityEstate drives a simulated hour of it.
func CityEstate(seed uint64) EstateConfig {
	const n = 8
	regions := make([]Scenario, 0, n*n)
	for i := 0; i < n*n; i++ {
		var scn Scenario
		switch i % 3 {
		case 0:
			scn = ApfelLand(seed + uint64(i))
		case 1:
			scn = DanceIsland(seed + uint64(i))
		default:
			scn = IsleOfView(seed + uint64(i))
		}
		scn.Land.Name = fmt.Sprintf("City (%d,%d)", i/n, i%n)
		regions = append(regions, scn)
	}
	return EstateConfig{
		Name:         "City",
		Rows:         n,
		Cols:         n,
		Regions:      regions,
		CrossProb:    0.002,
		TeleportProb: 0.0005,
		Seed:         seed,
		Duration:     DayDuration,
	}
}

// ChurnLevels are the mobility presets of the slbench churn sweep, in
// increasing order of per-snapshot change rate.
var ChurnLevels = []string{"low", "medium", "high"}

// ChurnScenario returns one of the churn-sweep mobility presets — the
// workloads the incremental graph engine's fallback threshold is measured
// against, rather than guessed. "low" is Dance Island's nearly-static
// crowd (a few percent of avatars move per τ=10 s snapshot), "medium" is
// Apfel Land's exploratory walking, and "high" is an adversarial stress
// preset: near-continuous movement, heavy wandering, and fast session
// turnover, so most of the population changes between snapshots and the
// engine's churn fallback has to keep the worst case at scratch-build
// cost.
func ChurnScenario(level string, seed uint64) (Scenario, error) {
	switch level {
	case "low":
		scn := DanceIsland(seed)
		scn.Land.Name = "Churn Low"
		return scn, nil
	case "medium":
		scn := ApfelLand(seed)
		scn.Land.Name = "Churn Medium"
		return scn, nil
	case "high":
		scn := IsleOfView(seed)
		scn.Land.Name = "Churn High"
		scn.Behavior.MicroMoveProb = 0.35
		scn.Behavior.MicroMoveStep = 2.5
		scn.Behavior.PauseMin, scn.Behavior.PauseMax = 5, 120
		scn.Behavior.ExploreProb = 0.5
		scn.Behavior.WandererFrac = 0.3
		scn.Session = SessionModelWithMean(30, 1800, 600)
		return scn, nil
	default:
		return Scenario{}, fmt.Errorf("world: unknown churn level %q (want low, medium, or high)", level)
	}
}

// BaselineScenario builds a synthetic-mobility comparison scenario on a
// generic land, population-matched to Dance Island so contact statistics
// are directly comparable between the POI-gravity model and the classical
// baselines (experiment X3).
func BaselineScenario(model Model, seed uint64) Scenario {
	scn := DanceIsland(seed)
	scn.Model = model
	scn.Land.Name = "Baseline " + model.String()
	scn.Land.Kind = Sandbox
	if model == RandomWaypoint {
		// Classical RWP uses modest uniform pauses.
		scn.Behavior.PauseMin, scn.Behavior.PauseMax = 10, 120
		scn.Behavior.MicroMoveProb = 0
	}
	if model == LevyWalk {
		scn.Behavior.PauseMin, scn.Behavior.PauseMax, scn.Behavior.PauseAlpha = 5, 1000, 0.8
		scn.Behavior.MicroMoveProb = 0
	}
	return scn
}
