package world

import (
	"fmt"

	"slmob/internal/rng"
)

// Model selects the mobility model driving avatar movement.
type Model int

const (
	// POIGravity is the paper-calibrated model: avatars revolve around
	// points of interest, pausing with heavy-tailed durations and making
	// small in-place movements while paused (dancing, chatting, browsing).
	POIGravity Model = iota
	// RandomWaypoint is the classical synthetic baseline: uniform random
	// destinations with uniform pauses.
	RandomWaypoint
	// LevyWalk is the Lévy-walk baseline of Rhee et al. (INFOCOM 2008,
	// the paper's reference [8]): heavy-tailed step lengths with
	// heavy-tailed pauses.
	LevyWalk
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case POIGravity:
		return "poi-gravity"
	case RandomWaypoint:
		return "random-waypoint"
	case LevyWalk:
		return "levy-walk"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Behavior holds the per-land behavioural parameters of the avatar state
// machine. Zero values are invalid; land presets provide calibrated sets.
type Behavior struct {
	// WalkSpeed and RunSpeed in m/s (Second Life: ~3.2 walk, ~5.2 run).
	WalkSpeed, RunSpeed float64
	// RunProb is the probability that a given leg is run rather than
	// walked.
	RunProb float64

	// PauseMin/PauseMax/PauseAlpha parameterise the bounded-Pareto pause
	// duration at a destination, in seconds.
	PauseMin, PauseMax, PauseAlpha float64

	// MicroMoveProb is the per-second probability of a small in-place
	// movement while paused (dancing, stepping to the bar); MicroMoveStep
	// bounds the hop length in metres.
	MicroMoveProb float64
	MicroMoveStep float64

	// ExploreProb is the probability that a destination is a uniformly
	// random point of the land instead of a POI.
	ExploreProb float64

	// WandererFrac is the fraction of logins who are wanderers: avatars
	// that tour WandererLegs random waypoints before adopting POI
	// behaviour. They produce the long travel-length tail (the ~2 % of
	// Isle of View users who cover more than 2 km).
	WandererFrac float64
	WandererLegs int

	// SitProb is the probability of taking a free sit spot when pausing
	// near one (only on lands with AllowSit).
	SitProb float64

	// ChatProb is the per-second probability that a paused avatar says
	// something in local chat.
	ChatProb float64

	// CuriosityProb is the per-second probability that an avatar starts
	// investigating a suspicious presence (a silent, motionless avatar —
	// i.e. a naive measurement crawler; paper §2). Set to 0 to disable
	// the perturbation model.
	CuriosityProb float64

	// SpawnJitter is the radius of the arrival platform in metres: logins
	// materialise uniformly within it. Zero selects a 3 m default.
	SpawnJitter float64

	// ArrivalPauseMin/Max bound the uniform "arrival ritual" pause at the
	// spawn platform (orienting, reading welcome signs) before the first
	// leg. Max zero disables the ritual. On sparse newbie lands this
	// ritual is long, which is what delays the first contact (Apfel
	// Land's FT median of ~5 minutes).
	ArrivalPauseMin, ArrivalPauseMax float64

	// ScatterLoginFrac is the fraction of logins that materialise at a
	// uniform random point of the land instead of the telehub: Second
	// Life returns users to their last saved location, so only first-time
	// visitors arrive at the spawn. Scattered logins skip the arrival
	// ritual.
	ScatterLoginFrac float64

	// GravityGamma adds distance decay to POI selection: the weight of a
	// candidate POI is divided by max(distance, 20m)^GravityGamma, the
	// classical gravity model. Zero disables decay. Decay keeps users
	// hopping between nearby attractions with occasional long trips.
	GravityGamma float64
}

// Validate checks the behaviour parameters.
func (b Behavior) Validate() error {
	if b.WalkSpeed <= 0 || b.RunSpeed < b.WalkSpeed {
		return fmt.Errorf("world: invalid speeds walk=%v run=%v", b.WalkSpeed, b.RunSpeed)
	}
	if b.PauseMin <= 0 || b.PauseMax <= b.PauseMin || b.PauseAlpha <= 0 {
		return fmt.Errorf("world: invalid pause distribution [%v,%v] alpha=%v",
			b.PauseMin, b.PauseMax, b.PauseAlpha)
	}
	if b.GravityGamma < 0 || b.GravityGamma > 4 {
		return fmt.Errorf("world: gravity exponent %v out of [0,4]", b.GravityGamma)
	}
	for _, p := range []float64{b.RunProb, b.MicroMoveProb, b.ExploreProb,
		b.WandererFrac, b.SitProb, b.ChatProb, b.CuriosityProb, b.ScatterLoginFrac} {
		if p < 0 || p > 1 {
			return fmt.Errorf("world: probability %v out of [0,1]", p)
		}
	}
	if b.MicroMoveProb > 0 && b.MicroMoveStep <= 0 {
		return fmt.Errorf("world: micro-moves enabled with non-positive step")
	}
	if b.WandererFrac > 0 && b.WandererLegs <= 0 {
		return fmt.Errorf("world: wanderers enabled with no legs")
	}
	if b.SpawnJitter < 0 {
		return fmt.Errorf("world: negative spawn jitter")
	}
	if b.ArrivalPauseMax > 0 && (b.ArrivalPauseMin < 0 || b.ArrivalPauseMin > b.ArrivalPauseMax) {
		return fmt.Errorf("world: invalid arrival pause [%v,%v]",
			b.ArrivalPauseMin, b.ArrivalPauseMax)
	}
	return nil
}

// SessionModel is the distribution of session durations (the paper's
// "travel time": total connection time to the land). The body is a
// bounded Pareto on [Min, Max]; an optional "stayer" mixture component
// models event attendees who remain for hours (Isle of View hosted a
// St. Valentine's event).
type SessionModel struct {
	Min, Max float64
	Alpha    float64
	// StayerFrac of sessions are drawn uniformly from
	// [StayerMin, StayerMax] instead of the Pareto body.
	StayerFrac           float64
	StayerMin, StayerMax float64
}

// Validate checks the session model.
func (m SessionModel) Validate() error {
	if m.Min <= 0 || m.Max <= m.Min || m.Alpha <= 0 {
		return fmt.Errorf("world: invalid session body [%v,%v] alpha=%v", m.Min, m.Max, m.Alpha)
	}
	if m.StayerFrac < 0 || m.StayerFrac > 1 {
		return fmt.Errorf("world: stayer fraction %v out of [0,1]", m.StayerFrac)
	}
	if m.StayerFrac > 0 && (m.StayerMin <= 0 || m.StayerMax <= m.StayerMin) {
		return fmt.Errorf("world: invalid stayer range [%v,%v]", m.StayerMin, m.StayerMax)
	}
	return nil
}

// Sample draws one session duration in seconds.
func (m SessionModel) Sample(r *rng.Source) float64 {
	if m.StayerFrac > 0 && r.Bool(m.StayerFrac) {
		return r.Range(m.StayerMin, m.StayerMax)
	}
	return r.BoundedPareto(m.Min, m.Max, m.Alpha)
}

// Mean returns the expected session duration.
func (m SessionModel) Mean() float64 {
	body := rng.BoundedParetoMean(m.Min, m.Max, m.Alpha)
	if m.StayerFrac == 0 {
		return body
	}
	stay := (m.StayerMin + m.StayerMax) / 2
	return m.StayerFrac*stay + (1-m.StayerFrac)*body
}

// SessionModelWithMean builds a pure bounded-Pareto session model on
// [min, max] whose mean equals the target (used by the calibrated land
// presets; targets derive from the paper's unique-visitor and concurrency
// figures).
func SessionModelWithMean(min, max, mean float64) SessionModel {
	return SessionModel{Min: min, Max: max, Alpha: rng.SolveBoundedParetoAlpha(min, max, mean)}
}

// Arrivals models the login process: a Poisson process whose rate is
// modulated over the day, approximating the diurnal activity cycle of the
// real service.
type Arrivals struct {
	// RatePerSec is the mean arrival rate averaged over a full day.
	RatePerSec float64
	// Diurnal holds 24 hourly multipliers, normalised internally to mean
	// 1 so RatePerSec stays the daily average. Nil means a flat rate.
	Diurnal []float64
	// StartHour is the hour of day at sim time zero.
	StartHour int
}

// Validate checks the arrival model.
func (a Arrivals) Validate() error {
	if a.RatePerSec < 0 {
		return fmt.Errorf("world: negative arrival rate")
	}
	if len(a.Diurnal) != 0 && len(a.Diurnal) != 24 {
		return fmt.Errorf("world: diurnal profile needs 24 entries, got %d", len(a.Diurnal))
	}
	for _, m := range a.Diurnal {
		if m < 0 {
			return fmt.Errorf("world: negative diurnal multiplier")
		}
	}
	if a.StartHour < 0 || a.StartHour > 23 {
		return fmt.Errorf("world: start hour %d out of range", a.StartHour)
	}
	return nil
}

// Rate returns the instantaneous arrival rate at sim time t (seconds).
func (a Arrivals) Rate(t int64) float64 {
	if len(a.Diurnal) == 0 {
		return a.RatePerSec
	}
	sum := 0.0
	for _, m := range a.Diurnal {
		sum += m
	}
	if sum == 0 {
		return 0
	}
	hour := (int(t/3600) + a.StartHour) % 24
	return a.RatePerSec * a.Diurnal[hour] * 24 / sum
}
