// Package graph implements the undirected-graph machinery behind the
// paper's line-of-sight network analysis (Fig. 2): proximity graphs built
// from avatar positions, connected components, BFS shortest paths, the
// diameter of the largest component, and the Watts–Strogatz clustering
// coefficient.
//
// Graphs here are small (a Second Life land holds at most ~100 concurrent
// avatars) but are rebuilt for every 10-second snapshot of a 24-hour trace,
// so construction is the hot path: adjacency uses compact int32 slices and
// proximity construction is grid-accelerated.
package graph

import (
	"fmt"

	"slmob/internal/geom"
)

// Graph is a simple undirected graph over vertices 0..n-1. Parallel edges
// and self-loops are rejected at construction.
type Graph struct {
	adj [][]int32
	m   int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v}. It returns an error for
// out-of-range endpoints, self-loops, or duplicate edges.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	for _, w := range g.adj[u] {
		if int(w) == v {
			return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
		}
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.m++
	return nil
}

// AddEdgeUnchecked inserts the undirected edge {u, v} without AddEdge's
// validation: no range check, no self-loop check, and — the part that
// matters on the hot path — no linear duplicate scan of u's adjacency
// list, which makes bulk construction O(m·d̄) instead of O(m). The caller
// must guarantee valid, distinct endpoints and that the edge is not
// already present; FromPositions qualifies because it emits each
// unordered pair exactly once from its lower endpoint.
func (g *Graph) AddEdgeUnchecked(u, v int) {
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.m++
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	for _, w := range g.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int {
	d := make([]int, len(g.adj))
	for u := range g.adj {
		d[u] = len(g.adj[u])
	}
	return d
}

// Neighbors returns the adjacency list of u. The caller must not modify
// the returned slice.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// Components returns the connected components as vertex lists, largest
// first among equals in first-seen order.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.adj))
	var comps [][]int
	queue := make([]int32, 0, len(g.adj))
	for s := range g.adj {
		if seen[s] {
			continue
		}
		var comp []int
		queue = append(queue[:0], int32(s))
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, int(u))
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// LargestComponent returns the vertices of the largest connected component
// (ties broken by first-seen order); it returns nil for the empty graph.
func (g *Graph) LargestComponent() []int {
	var best []int
	for _, c := range g.Components() {
		if len(c) > len(best) {
			best = c
		}
	}
	return best
}

// BFS returns the hop distance from src to every vertex, with -1 for
// unreachable vertices.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= len(g.adj) {
		return dist
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter computes the paper's "network diameter" metric: the longest
// shortest path within the largest connected component. The empty graph
// and singleton components yield 0. Exact all-pairs BFS is used; with at
// most ~100 vertices per snapshot this is cheap.
func (g *Graph) Diameter() int {
	comp := g.LargestComponent()
	if len(comp) < 2 {
		return 0
	}
	diam := 0
	for _, u := range comp {
		dist := g.BFS(u)
		for _, v := range comp {
			if dist[v] > diam {
				diam = dist[v]
			}
		}
	}
	return diam
}

// LocalClustering returns the Watts–Strogatz clustering coefficient of u:
// the fraction of pairs of u's neighbours that are themselves connected.
// Vertices with degree < 2 have coefficient 0, following the convention
// used by the paper's reference [10].
func (g *Graph) LocalClustering(u int) float64 {
	nbrs := g.adj[u]
	k := len(nbrs)
	if k < 2 {
		return 0
	}
	links := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if g.HasEdge(int(nbrs[i]), int(nbrs[j])) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(k*(k-1))
}

// MeanClustering returns the average of LocalClustering over all vertices,
// "the mean value ... representative of the whole communication network"
// (paper §3.2). The empty graph yields 0.
func (g *Graph) MeanClustering() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	sum := 0.0
	for u := range g.adj {
		sum += g.LocalClustering(u)
	}
	return sum / float64(len(g.adj))
}

// FromPositions builds the line-of-sight proximity graph over the given
// ground-plane positions: vertices i and j are adjacent iff their distance
// is at most r (an ideal wireless channel, per the paper's assumption).
// Construction is accelerated with a uniform grid, giving near-linear time
// for the sparse graphs typical of a land snapshot.
func FromPositions(ps []geom.Vec, r float64) *Graph {
	g := New(len(ps))
	if r <= 0 || len(ps) < 2 {
		return g
	}
	grid := geom.NewGrid(r)
	for i, p := range ps {
		grid.Insert(int64(i), p)
	}
	for i, p := range ps {
		grid.VisitWithin(p, r, func(id int64, _ geom.Vec) bool {
			j := int(id)
			if j > i {
				// Unchecked insertion is safe here: indices are valid,
				// j > i prevents self-loops, and each unordered pair is
				// visited once from its lower endpoint.
				g.AddEdgeUnchecked(i, j)
			}
			return true
		})
	}
	return g
}
