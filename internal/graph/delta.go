package graph

import (
	"slmob/internal/geom"
)

// DefaultChurnThreshold is the moved+arrived+departed fraction of the
// population above which ApplyPositions abandons the incremental patch
// and rebuilds from scratch. Measured with slbench -churn-sweep: the
// incremental path stays profitable well past half the population
// changing per snapshot (the patch touches only dirty neighbourhoods,
// while a rebuild re-queries everyone), and above that the two paths
// cost about the same — so the fallback exists to bound the worst case,
// not to win the average one.
const DefaultChurnThreshold = 0.75

// WorkspaceStats counts how the incremental engine served a workspace's
// build calls — the observability feed behind slbench's incremental-hit
// report. Counters only ever increase; Add folds another workspace's
// counters in, so per-range and per-region workspaces aggregate.
type WorkspaceStats struct {
	// Snapshots counts ApplyPositions calls.
	Snapshots int64
	// Incremental counts snapshots served by the delta path.
	Incremental int64
	// FullRebuilds counts snapshots that rebuilt from scratch: the first
	// snapshot, range changes, churn-fallback triggers, and builds after
	// a FromPositions invalidated the state.
	FullRebuilds int64
	// Moved / Arrived / Departed count per-avatar diff outcomes across
	// all diffed snapshots (fallback snapshots included — the diff is
	// what decides the fallback).
	Moved    int64
	Arrived  int64
	Departed int64
	// EdgesAdded / EdgesRemoved count adjacency patches on the delta
	// path. Scratch rebuilds are not counted: the rates describe
	// incremental work.
	EdgesAdded   int64
	EdgesRemoved int64
	// DiamReused / DiamComputed count Diameter calls answered from the
	// component cache vs recomputed; CCReused / CCComputed count
	// per-vertex clustering coefficients served from cache vs computed.
	DiamReused   int64
	DiamComputed int64
	CCReused     int64
	CCComputed   int64
}

// Add folds another stats block into st.
func (st *WorkspaceStats) Add(o WorkspaceStats) {
	st.Snapshots += o.Snapshots
	st.Incremental += o.Incremental
	st.FullRebuilds += o.FullRebuilds
	st.Moved += o.Moved
	st.Arrived += o.Arrived
	st.Departed += o.Departed
	st.EdgesAdded += o.EdgesAdded
	st.EdgesRemoved += o.EdgesRemoved
	st.DiamReused += o.DiamReused
	st.DiamComputed += o.DiamComputed
	st.CCReused += o.CCReused
	st.CCComputed += o.CCComputed
}

// Stats returns a copy of the workspace's incremental-engine counters.
func (ws *Workspace) Stats() WorkspaceStats { return ws.stats }

// SetChurnThreshold overrides the churn fraction above which
// ApplyPositions falls back to a full rebuild. Zero restores
// DefaultChurnThreshold; a negative value forces a rebuild on every call
// (the parity-test configuration); 1 or more disables the fallback.
func (ws *Workspace) SetChurnThreshold(t float64) { ws.d.thresh = t }

// deltaState is the temporal-coherence state ApplyPositions keeps between
// snapshots. Avatars live in stable slots so that identity survives the
// index reshuffling of arrivals and departures: the grid, the slot-space
// adjacency, and the per-slot metric caches are keyed by slot, and each
// call translates the patched slot-space graph into the workspace's
// index-space CSR arena.
type deltaState struct {
	ok     bool    // slot state mirrors the previous snapshot
	active bool    // the latest build came through ApplyPositions
	r      float64 // communication range the state is keyed to
	thresh float64 // churn fallback threshold; 0 selects the default
	epoch  int64   // ApplyPositions call counter, for generation stamps

	grid *geom.Grid // persistent grid over live slots, patched in place

	idOf  map[uint64]int32 // avatar id -> slot
	id    []uint64         // slot -> avatar id
	pos   []geom.Vec       // slot -> last observed position
	nbr   [][]int32        // slot-space adjacency, unordered
	seen  []int64          // slot -> epoch last present (departure detection)
	dirtG []int64          // slot -> epoch last marked dirty
	free  []int32          // recyclable slots
	live  []int32          // slots present in the previous snapshot

	slotOf []int32 // current index -> slot
	idxOf  []int32 // slot -> current index

	// Metric caches, invalidated by edge changes in the slot's
	// neighbourhood (see touch rules in detachSlot/linkSlots).
	cc     []float64 // slot -> local clustering coefficient
	ccOK   []bool
	diam   []int32 // slot -> diameter of its component when last cached
	diamOK []bool

	// Per-call scratch.
	dirty    []int32 // slots whose edges must be recomputed
	departed []int32
	arrived  []int32 // current indices of new avatars
	moved    []int32 // current indices of avatars whose (X, Y) changed
	ccStamp  []int32 // neighbour-membership stamps for clustering recompute
}

// ApplyPositions builds the same proximity graph FromPositions builds —
// identical vertex indexing, identical edge set — by diffing the snapshot
// against the previous ApplyPositions call and patching only what
// changed: avatars whose ground-plane position moved, arrivals, and
// departures. ids[i] is the stable identity of the avatar at ps[i]; ids
// must be unique within a call. When the churn fraction exceeds the
// threshold (SetChurnThreshold), or on the first call, a range change, or
// after a FromPositions call, it falls back to a full rebuild, so the
// worst case never exceeds a scratch build.
//
// Adjacency-list order may differ from FromPositions, but every metric
// the pipeline derives — degrees, diameter, clustering, contact pairs —
// depends only on the edge set and is bit-identical between the two
// builders. The returned graph is invalidated by the next build call.
//
//slmob:hotpath
func (ws *Workspace) ApplyPositions(ids []uint64, ps []geom.Vec, r float64) *Graph {
	if len(ids) != len(ps) {
		panic("graph: ApplyPositions ids/positions length mismatch")
	}
	ws.stats.Snapshots++
	d := &ws.d
	if r <= 0 {
		// Degenerate range: no edges ever; the scratch builder handles it
		// (and invalidates the delta state).
		ws.stats.FullRebuilds++
		return ws.FromPositions(ps, r)
	}
	if !d.ok || d.r != r {
		return ws.rebuildDelta(ids, ps, r)
	}

	// Diff the snapshot against the slot state.
	n := len(ids)
	d.epoch++
	d.slotOf = growInt32(d.slotOf, n)
	d.moved = d.moved[:0]
	d.arrived = d.arrived[:0]
	d.departed = d.departed[:0]
	for i := 0; i < n; i++ {
		s, ok := d.idOf[ids[i]]
		if !ok {
			d.slotOf[i] = -1
			d.arrived = append(d.arrived, int32(i))
			continue
		}
		d.slotOf[i] = s
		d.seen[s] = d.epoch
		d.idxOf[s] = int32(i)
		if p := ps[i]; p.X != d.pos[s].X || p.Y != d.pos[s].Y {
			d.moved = append(d.moved, int32(i))
		}
	}
	for _, s := range d.live {
		if d.seen[s] != d.epoch {
			d.departed = append(d.departed, s)
		}
	}
	ws.stats.Moved += int64(len(d.moved))
	ws.stats.Arrived += int64(len(d.arrived))
	ws.stats.Departed += int64(len(d.departed))

	// Churn heuristic: beyond the threshold a scratch rebuild costs less
	// than patching nearly everyone's neighbourhood.
	base := n
	if p := len(d.live); p > base {
		base = p
	}
	changed := len(d.moved) + len(d.arrived) + len(d.departed)
	thresh := d.thresh
	if thresh == 0 {
		thresh = DefaultChurnThreshold
	}
	if thresh < 0 || float64(changed) > thresh*float64(base) {
		return ws.rebuildDelta(ids, ps, r)
	}
	ws.stats.Incremental++

	// Departures: detach, drop from the grid, recycle the slot.
	for _, s := range d.departed {
		ws.detachSlot(s)
		d.grid.Remove(int64(s), d.pos[s])
		delete(d.idOf, d.id[s])
		d.free = append(d.free, s)
	}
	// Arrivals: allocate a slot, insert into the grid, mark dirty.
	d.dirty = d.dirty[:0]
	for _, i := range d.arrived {
		s := d.allocSlot()
		d.id[s] = ids[i]
		d.idOf[ids[i]] = s
		d.pos[s] = ps[i]
		d.seen[s] = d.epoch
		d.slotOf[i] = s
		d.idxOf[s] = i
		d.grid.Insert(int64(s), ps[i])
		d.markDirty(s)
	}
	// Moves: relocate in the grid, mark dirty.
	for _, i := range d.moved {
		s := d.slotOf[i]
		d.grid.Move(int64(s), d.pos[s], ps[i])
		d.pos[s] = ps[i]
		d.markDirty(s)
	}
	d.live = d.live[:0]
	for i := 0; i < n; i++ {
		d.live = append(d.live, d.slotOf[i])
	}

	// Edge patch. First detach every dirty slot (so re-adds cannot
	// duplicate), then re-derive each dirty slot's neighbourhood from the
	// patched grid. A dirty-dirty pair is emitted once, from the
	// lower-numbered slot.
	for _, s := range d.dirty {
		ws.detachSlot(s)
	}
	for _, s := range d.dirty {
		ws.relinkSlot(s, r)
	}

	// Translate the slot-space adjacency into the index-space CSR arena.
	if cap(ws.adj) < n {
		ws.adj = make([][]int32, n, n+n/2+8)
	}
	ws.adj = ws.adj[:n]
	ws.off = growInt32(ws.off, n+1)
	ws.off[0] = 0
	m2 := int32(0)
	for i := 0; i < n; i++ {
		m2 += int32(len(d.nbr[d.slotOf[i]]))
		ws.off[i+1] = m2
	}
	ws.arena = growInt32(ws.arena, int(m2))
	for i := 0; i < n; i++ {
		base := int(ws.off[i])
		for k, o := range d.nbr[d.slotOf[i]] {
			ws.arena[base+k] = d.idxOf[o]
		}
		ws.adj[i] = ws.arena[ws.off[i]:ws.off[i+1]:ws.off[i+1]]
	}
	ws.g = Graph{adj: ws.adj, m: int(m2) / 2}
	d.active = true
	return &ws.g
}

// rebuildDelta builds the slot state from scratch with slot == index —
// the first-call path and the churn fallback. The scratch grid pass is
// the same two-pass build FromPositions runs; on top of it the slot
// tables, the persistent grid, and the (invalidated) metric caches are
// refilled so the next call can patch incrementally.
//
//slmob:hotpath
func (ws *Workspace) rebuildDelta(ids []uint64, ps []geom.Vec, r float64) *Graph {
	ws.stats.FullRebuilds++
	d := &ws.d
	n := len(ids)
	d.epoch++
	d.r = r
	d.ensureSlots(n)
	if d.idOf == nil {
		d.idOf = make(map[uint64]int32, n)
	}
	clear(d.idOf)
	// Slots beyond the population are parked on the free list, keeping
	// their neighbour buffers for later growth; lowest slot on top.
	d.free = d.free[:0]
	for s := len(d.id) - 1; s >= n; s-- {
		d.nbr[s] = d.nbr[s][:0]
		d.ccOK[s] = false
		d.diamOK[s] = false
		d.free = append(d.free, int32(s))
	}
	d.live = d.live[:0]
	d.slotOf = growInt32(d.slotOf, n)
	if d.grid == nil || d.grid.CellSize() != r {
		d.grid = geom.NewGrid(r)
	} else {
		d.grid.Reset()
	}
	for i := 0; i < n; i++ {
		d.id[i] = ids[i]
		d.idOf[ids[i]] = int32(i)
		d.pos[i] = ps[i]
		d.seen[i] = d.epoch
		d.idxOf[i] = int32(i)
		d.ccOK[i] = false
		d.diamOK[i] = false
		d.slotOf[i] = int32(i)
		d.live = append(d.live, int32(i))
		d.grid.Insert(int64(i), ps[i])
	}

	// Scratch edge pass into the CSR arena, as FromPositions does.
	if cap(ws.adj) < n {
		ws.adj = make([][]int32, n, n+n/2+8)
	}
	ws.adj = ws.adj[:n]
	ws.g = Graph{adj: ws.adj}
	ws.pairs = ws.pairs[:0]
	for i := 0; i < n; i++ {
		d.grid.VisitWithin(ps[i], r, func(oid int64, _ geom.Vec) bool {
			if j := int32(oid); int(j) > i {
				ws.pairs = append(ws.pairs, int32(i), j)
			}
			return true
		})
	}
	ws.buildCSR(n)
	// Mirror the adjacency into the mutable slot-space lists.
	for i := 0; i < n; i++ {
		lst := d.nbr[i]
		lst = lst[:0]
		for _, v := range ws.adj[i] {
			lst = append(lst, v)
		}
		d.nbr[i] = lst
	}
	d.ok = true
	d.active = true
	return &ws.g
}

// ensureSlots grows every slot-indexed table to at least n entries,
// preserving existing slots.
//
//slmob:hotpath
func (d *deltaState) ensureSlots(n int) {
	for len(d.id) < n {
		d.id = append(d.id, 0)
		d.pos = append(d.pos, geom.Vec{})
		d.nbr = append(d.nbr, nil)
		d.seen = append(d.seen, 0)
		d.dirtG = append(d.dirtG, 0)
		d.idxOf = append(d.idxOf, -1)
		d.cc = append(d.cc, 0)
		d.ccOK = append(d.ccOK, false)
		d.diam = append(d.diam, 0)
		d.diamOK = append(d.diamOK, false)
	}
}

// allocSlot hands out a recycled slot, or a fresh one when the free list
// is empty. Fresh slots start with cleared caches by construction;
// recycled slots were cleared when freed.
//
//slmob:hotpath
func (d *deltaState) allocSlot() int32 {
	if k := len(d.free); k > 0 {
		s := d.free[k-1]
		d.free = d.free[:k-1]
		return s
	}
	s := int32(len(d.id))
	d.ensureSlots(len(d.id) + 1)
	return s
}

// markDirty queues a slot for edge recomputation, once per call.
//
//slmob:hotpath
func (d *deltaState) markDirty(s int32) {
	if d.dirtG[s] != d.epoch {
		d.dirtG[s] = d.epoch
		d.dirty = append(d.dirty, s)
	}
}

// detachSlot removes every edge incident to s and invalidates the metric
// caches the removals can affect: s itself and each ex-neighbour. (A
// vertex whose clustering depends on a removed edge {s, o} is adjacent to
// s, so the N_old(s) sweep covers all third parties.)
//
//slmob:hotpath
func (ws *Workspace) detachSlot(s int32) {
	d := &ws.d
	for _, o := range d.nbr[s] {
		lst := d.nbr[o]
		for k := range lst {
			if lst[k] == s {
				last := len(lst) - 1
				lst[k] = lst[last]
				d.nbr[o] = lst[:last]
				break
			}
		}
		d.ccOK[o] = false
		d.diamOK[o] = false
	}
	ws.stats.EdgesRemoved += int64(len(d.nbr[s]))
	d.nbr[s] = d.nbr[s][:0]
	d.ccOK[s] = false
	d.diamOK[s] = false
}

// relinkSlot re-derives s's neighbourhood from the patched grid. Edges to
// non-dirty slots are added unconditionally (s was detached, so no
// duplicate can exist); a dirty-dirty pair is added only from its
// lower-numbered endpoint, since the higher one will see it too.
//
//slmob:hotpath
func (ws *Workspace) relinkSlot(s int32, r float64) {
	d := &ws.d
	d.grid.VisitWithin(d.pos[s], r, func(oid int64, _ geom.Vec) bool {
		o := int32(oid)
		if o == s || (d.dirtG[o] == d.epoch && o < s) {
			return true
		}
		d.nbr[s] = append(d.nbr[s], o)
		d.nbr[o] = append(d.nbr[o], s)
		d.ccOK[s] = false
		d.ccOK[o] = false
		d.diamOK[s] = false
		d.diamOK[o] = false
		ws.stats.EdgesAdded++
		return true
	})
}

// deltaDiameter answers Diameter for an ApplyPositions-built graph:
// ws.best already holds the largest component (current indices). When
// every member's slot carries a valid cached diameter, the component is
// unchanged since the cache was filled — any structural change clears at
// least one member's flag — and the cached value is returned. Otherwise
// the all-pairs BFS runs with distance resets restricted to the
// component (O(|C|²) instead of O(|C|·n)) and refills the cache.
//
//slmob:hotpath
func (ws *Workspace) deltaDiameter() int {
	d := &ws.d
	g := &ws.g
	cached := true
	for _, u := range ws.best {
		if !d.diamOK[d.slotOf[u]] {
			cached = false
			break
		}
	}
	if cached {
		ws.stats.DiamReused++
		return int(d.diam[d.slotOf[ws.best[0]]])
	}
	ws.stats.DiamComputed++
	diam := int32(0)
	for _, src := range ws.best {
		for _, u := range ws.best {
			ws.dist[u] = -1
		}
		ws.dist[src] = 0
		ws.queue = ws.queue[:0]
		ws.queue = append(ws.queue, src)
		for qi := 0; qi < len(ws.queue); qi++ {
			u := ws.queue[qi]
			du := ws.dist[u]
			for _, v := range g.adj[u] {
				if ws.dist[v] < 0 {
					ws.dist[v] = du + 1
					ws.queue = append(ws.queue, v)
					if du+1 > diam {
						diam = du + 1
					}
				}
			}
		}
	}
	for _, u := range ws.best {
		s := d.slotOf[u]
		d.diam[s] = diam
		d.diamOK[s] = true
	}
	return int(diam)
}

// deltaMeanClustering answers MeanClustering for an ApplyPositions-built
// graph, reusing each vertex's cached coefficient unless an edge change
// touched its two-hop neighbourhood. Invalidated coefficients are
// recomputed with a neighbour-stamp sweep — O(Σ deg(v) over v ∈ N(u))
// instead of LocalClustering's pairwise HasEdge scans — which counts
// exactly the same integer number of links, so the coefficient, the sum
// order, and the result are all bit-identical to Graph.MeanClustering.
//
//slmob:hotpath
func (ws *Workspace) deltaMeanClustering() float64 {
	g := &ws.g
	n := len(g.adj)
	if n == 0 {
		return 0
	}
	d := &ws.d
	d.ccStamp = growInt32(d.ccStamp, n)
	for i := range d.ccStamp {
		d.ccStamp[i] = 0
	}
	sum := 0.0
	for u := 0; u < n; u++ {
		s := d.slotOf[u]
		if d.ccOK[s] {
			ws.stats.CCReused++
		} else {
			nbrs := g.adj[u]
			c := 0.0
			if k := len(nbrs); k >= 2 {
				st := int32(u) + 1
				for _, v := range nbrs {
					d.ccStamp[v] = st
				}
				links := 0
				for _, v := range nbrs {
					for _, w := range g.adj[v] {
						if w > v && d.ccStamp[w] == st {
							links++
						}
					}
				}
				c = 2 * float64(links) / float64(k*(k-1))
			}
			d.cc[s] = c
			d.ccOK[s] = true
			ws.stats.CCComputed++
		}
		sum += d.cc[s]
	}
	return sum / float64(n)
}
