package graph

import (
	"reflect"
	"testing"

	"slmob/internal/geom"
)

// wsPositions generates a deterministic scattered population with both
// dense clusters and isolated vertices.
func wsPositions(n int, salt uint64) []geom.Vec {
	state := salt*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>40) / float64(1<<24)
	}
	ps := make([]geom.Vec, n)
	for i := range ps {
		if i%3 == 0 {
			// Clustered third: tight groups produce multi-hop components.
			ps[i] = geom.V2(40+20*next(), 40+20*next())
		} else {
			ps[i] = geom.V2(256*next(), 256*next())
		}
	}
	return ps
}

// TestWorkspaceMatchesFromPositions: the workspace builder must produce
// exactly the graph of the allocating builder — adjacency lists included
// — and the same diameter and clustering, across populations and ranges.
func TestWorkspaceMatchesFromPositions(t *testing.T) {
	ws := NewWorkspace()
	for _, n := range []int{0, 1, 2, 7, 60, 200} {
		for _, r := range []float64{0, 5, 10, 80} {
			ps := wsPositions(n, uint64(n)+uint64(r*1000))
			want := FromPositions(ps, r)
			got := ws.FromPositions(ps, r)
			if got.N() != want.N() || got.M() != want.M() {
				t.Fatalf("n=%d r=%v: N/M = %d/%d, want %d/%d",
					n, r, got.N(), got.M(), want.N(), want.M())
			}
			for u := 0; u < want.N(); u++ {
				g, w := got.Neighbors(u), want.Neighbors(u)
				if len(g) != len(w) {
					t.Fatalf("n=%d r=%v: degree(%d) = %d, want %d", n, r, u, len(g), len(w))
				}
				if len(w) > 0 && !reflect.DeepEqual(g, w) {
					t.Fatalf("n=%d r=%v: adj(%d) = %v, want %v", n, r, u, g, w)
				}
			}
			if gd, wd := ws.Diameter(), want.Diameter(); gd != wd {
				t.Fatalf("n=%d r=%v: diameter = %d, want %d", n, r, gd, wd)
			}
			if gc, wc := ws.MeanClustering(), want.MeanClustering(); gc != wc {
				t.Fatalf("n=%d r=%v: clustering = %v, want %v", n, r, gc, wc)
			}
		}
	}
}

// TestWorkspaceReuseAcrossSizes: shrinking and re-growing the population
// must not leak stale adjacency from earlier builds.
func TestWorkspaceReuseAcrossSizes(t *testing.T) {
	ws := NewWorkspace()
	big := wsPositions(100, 1)
	ws.FromPositions(big, 80)
	small := []geom.Vec{geom.V2(0, 0), geom.V2(300, 300)}
	g := ws.FromPositions(small, 10)
	if g.N() != 2 || g.M() != 0 {
		t.Fatalf("after shrink: N/M = %d/%d, want 2/0", g.N(), g.M())
	}
	if g.Degree(0) != 0 || g.Degree(1) != 0 {
		t.Fatal("stale adjacency after shrink")
	}
	again := ws.FromPositions(big, 80)
	want := FromPositions(big, 80)
	if again.M() != want.M() {
		t.Fatalf("after regrow: M = %d, want %d", again.M(), want.M())
	}
}

// TestWorkspaceZeroAllocSteadyState pins the tentpole contract: building
// the proximity graph and computing diameter + clustering allocates
// nothing once the workspace has warmed up.
func TestWorkspaceZeroAllocSteadyState(t *testing.T) {
	ws := NewWorkspace()
	ps := wsPositions(120, 9)
	// Warm-up: populate the grid cells and size every buffer.
	for i := 0; i < 3; i++ {
		ws.FromPositions(ps, 10)
		ws.Diameter()
		ws.MeanClustering()
	}
	avg := testing.AllocsPerRun(100, func() {
		g := ws.FromPositions(ps, 10)
		_ = g.Degree(0)
		_ = ws.Diameter()
		_ = ws.MeanClustering()
	})
	if avg != 0 {
		t.Errorf("steady-state snapshot build allocates %v per run, want 0", avg)
	}
}

func BenchmarkP4WorkspaceBuild(b *testing.B) {
	ws := NewWorkspace()
	ps := wsPositions(200, 4)
	ws.FromPositions(ps, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.FromPositions(ps, 10)
		ws.Diameter()
		ws.MeanClustering()
	}
}

func BenchmarkP4AllocatingBuild(b *testing.B) {
	ps := wsPositions(200, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := FromPositions(ps, 10)
		g.Diameter()
		g.MeanClustering()
	}
}
