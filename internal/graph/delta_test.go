package graph

import (
	"slices"
	"testing"

	"slmob/internal/geom"
)

// deltaSim is a seeded avatar-churn simulator for the differential tests:
// a population with login/logout churn, teleports, and per-step walks,
// deterministic for a given seed.
type deltaSim struct {
	state  uint64
	nextID uint64
	ids    []uint64
	pos    []geom.Vec
}

func newDeltaSim(seed uint64, n int) *deltaSim {
	s := &deltaSim{state: seed*2862933555777941757 + 3037000493, nextID: 1}
	for i := 0; i < n; i++ {
		s.login()
	}
	return s
}

func (s *deltaSim) rand() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

func (s *deltaSim) unit() float64 { return float64(s.rand()>>40) / float64(1<<24) }

func (s *deltaSim) randPos() geom.Vec {
	// Half the population concentrates in a 60 m plaza so components are
	// non-trivial at r=10; the rest scatters over the land.
	if s.unit() < 0.5 {
		return geom.V2(100+60*s.unit(), 100+60*s.unit())
	}
	return geom.V2(256*s.unit(), 256*s.unit())
}

func (s *deltaSim) login() {
	s.ids = append(s.ids, s.nextID)
	s.pos = append(s.pos, s.randPos())
	s.nextID++
}

// step advances one snapshot: logouts, logins, teleports, and short
// walks, at the given per-avatar rates.
func (s *deltaSim) step(logout, login, teleport, walk float64) {
	for i := 0; i < len(s.ids); {
		if s.unit() < logout {
			last := len(s.ids) - 1
			s.ids[i], s.pos[i] = s.ids[last], s.pos[last]
			s.ids, s.pos = s.ids[:last], s.pos[:last]
			continue
		}
		i++
	}
	for k := 0; k < 4; k++ {
		if s.unit() < login {
			s.login()
		}
	}
	for i := range s.ids {
		switch u := s.unit(); {
		case u < teleport:
			s.pos[i] = s.randPos()
		case u < teleport+walk:
			s.pos[i] = geom.V2(s.pos[i].X+6*(s.unit()-0.5), s.pos[i].Y+6*(s.unit()-0.5))
		}
	}
}

// edgeSet returns the graph's edges as sorted packed (min,max) pairs —
// the order-insensitive adjacency comparison.
func edgeSet(g *Graph) []uint64 {
	var es []uint64
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				es = append(es, uint64(u)<<32|uint64(v))
			}
		}
	}
	slices.Sort(es)
	return es
}

// checkParity asserts that the delta workspace's current graph and
// metrics are bit-identical to a scratch build over the same snapshot.
func checkParity(t *testing.T, step int, ws *Workspace, ps []geom.Vec, r float64) {
	t.Helper()
	g := ws.Graph()
	scratch := NewWorkspace()
	want := scratch.FromPositions(ps, r)
	if g.N() != want.N() || g.M() != want.M() {
		t.Fatalf("step %d: N/M = %d/%d, want %d/%d", step, g.N(), g.M(), want.N(), want.M())
	}
	for u := 0; u < want.N(); u++ {
		if g.Degree(u) != want.Degree(u) {
			t.Fatalf("step %d: degree(%d) = %d, want %d", step, u, g.Degree(u), want.Degree(u))
		}
	}
	if ge, we := edgeSet(g), edgeSet(want); !slices.Equal(ge, we) {
		t.Fatalf("step %d: edge sets differ: got %d edges, want %d", step, len(ge), len(we))
	}
	if gd, wd := ws.Diameter(), scratch.Diameter(); gd != wd {
		t.Fatalf("step %d: diameter = %d, want %d", step, gd, wd)
	}
	if gc, wc := ws.MeanClustering(), scratch.MeanClustering(); gc != wc {
		t.Fatalf("step %d: clustering = %v, want %v (must be bit-identical)", step, gc, wc)
	}
}

// TestApplyPositionsDifferential is the randomized differential gate:
// a seeded churn simulation runs for K snapshots and the incremental
// build must match a scratch build bit-for-bit at every step — edges,
// degrees, diameter, clustering — across churn regimes and fallback
// thresholds (always-incremental, default, twitchy, always-rebuild).
func TestApplyPositionsDifferential(t *testing.T) {
	regimes := []struct {
		name                          string
		logout, login, teleport, walk float64
	}{
		{"calm", 0.002, 0.1, 0.002, 0.05},
		{"paper", 0.01, 0.3, 0.01, 0.2},
		{"stormy", 0.08, 0.9, 0.15, 0.6},
	}
	thresholds := []float64{1.0, 0, 0.05, -1}
	for _, reg := range regimes {
		for _, thresh := range thresholds {
			for _, r := range []float64{10, 80} {
				sim := newDeltaSim(uint64(len(reg.name))*1000003+uint64(r), 70)
				ws := NewWorkspace()
				ws.SetChurnThreshold(thresh)
				for step := 0; step < 120; step++ {
					sim.step(reg.logout, reg.login, reg.teleport, reg.walk)
					ws.ApplyPositions(sim.ids, sim.pos, r)
					checkParity(t, step, ws, sim.pos, r)
					// A scratch build mid-stream must invalidate cleanly.
					if step == 60 {
						ws.FromPositions(sim.pos, r)
					}
				}
				st := ws.Stats()
				if st.Snapshots != 120 {
					t.Fatalf("%s thresh=%v r=%v: %d snapshots counted, want 120", reg.name, thresh, r, st.Snapshots)
				}
				if st.Incremental+st.FullRebuilds != st.Snapshots {
					t.Fatalf("%s thresh=%v r=%v: stats don't partition: %+v", reg.name, thresh, r, st)
				}
				if thresh == -1 && st.Incremental != 0 {
					t.Fatalf("thresh=-1 must always rebuild, served %d incrementally", st.Incremental)
				}
				if thresh == 1.0 && reg.name == "calm" && st.FullRebuilds > 2 {
					// First build + the forced FromPositions invalidation.
					t.Fatalf("thresh=1 should never fall back, rebuilt %d times", st.FullRebuilds)
				}
			}
		}
	}
}

// TestApplyPositionsInterleavedSizes drives population growth and shrink
// — including collapse to zero and one — through a single workspace,
// interleaved with scratch builds of other sizes, so buffer reuse across
// differently-sized snapshots cannot leak stale slots or adjacency.
func TestApplyPositionsInterleavedSizes(t *testing.T) {
	ws := NewWorkspace()
	sizes := []int{80, 3, 150, 0, 1, 40, 200, 2, 97}
	var ids []uint64
	var ps []geom.Vec
	for step, n := range sizes {
		ids, ps = ids[:0], ps[:0]
		// Overlapping identity across steps: avatars 0..n-1, positions
		// re-derived per step so survivors move.
		for i := 0; i < n; i++ {
			ids = append(ids, uint64(i+1))
			base := wsPositions(n, uint64(step))
			ps = append(ps, base[i])
		}
		ws.ApplyPositions(ids, ps, 10)
		checkParity(t, step, ws, ps, 10)
		if step%3 == 1 {
			// Disturb the pooled buffers with an unrelated scratch build.
			ws.FromPositions(wsPositions(300, uint64(step)), 80)
			ws.Diameter()
			ws.ApplyPositions(ids, ps, 10)
			checkParity(t, step, ws, ps, 10)
		}
	}
}

// TestApplyPositionsRangeChange: changing the communication range must
// force a rebuild, not reuse state keyed to the old range.
func TestApplyPositionsRangeChange(t *testing.T) {
	ws := NewWorkspace()
	ps := wsPositions(90, 7)
	ids := make([]uint64, len(ps))
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	ws.ApplyPositions(ids, ps, 10)
	ws.ApplyPositions(ids, ps, 80)
	checkParity(t, 1, ws, ps, 80)
	ws.ApplyPositions(ids, ps, 10)
	checkParity(t, 2, ws, ps, 10)
	if st := ws.Stats(); st.FullRebuilds != 3 {
		t.Fatalf("range flips must rebuild every time: %+v", st)
	}
}

// TestApplyPositionsComponentReuse pins the metric-reuse machinery: on a
// static population every Diameter call after the first is served from
// the component cache and every clustering coefficient from the vertex
// cache; moving one far-away isolate must not invalidate the main
// component's caches.
func TestApplyPositionsComponentReuse(t *testing.T) {
	ws := NewWorkspace()
	// A connected cluster plus one distant isolate.
	ps := []geom.Vec{
		geom.V2(50, 50), geom.V2(55, 50), geom.V2(50, 55), geom.V2(58, 56),
		geom.V2(230, 230),
	}
	ids := []uint64{1, 2, 3, 4, 99}
	for step := 0; step < 5; step++ {
		ws.ApplyPositions(ids, ps, 10)
		ws.Diameter()
		ws.MeanClustering()
	}
	st := ws.Stats()
	if st.DiamComputed != 1 || st.DiamReused != 4 {
		t.Fatalf("static population: diameter computed %d / reused %d, want 1/4", st.DiamComputed, st.DiamReused)
	}
	if st.CCComputed != 5 {
		t.Fatalf("static population: %d clustering coefficients computed, want 5", st.CCComputed)
	}
	// Move the isolate: the cluster's caches must survive.
	ps[4] = geom.V2(200, 200)
	ws.ApplyPositions(ids, ps, 10)
	ws.Diameter()
	ws.MeanClustering()
	st = ws.Stats()
	if st.DiamComputed != 1 || st.DiamReused != 5 {
		t.Fatalf("isolate move invalidated the main component: computed %d / reused %d", st.DiamComputed, st.DiamReused)
	}
	if st.CCComputed != 6 { // only the isolate recomputes
		t.Fatalf("isolate move recomputed %d coefficients, want 6 total", st.CCComputed)
	}
	checkParity(t, 6, ws, ps, 10)
}

// deltaAllocFrames precomputes a cycle of snapshots over a stable
// population in which ~10% of avatars walk (some across grid cells) each
// frame, so the steady-state pin measures the incremental path with real
// movement, grid relocation, and edge churn.
func deltaAllocFrames(n, frames int) (ids []uint64, frame [][]geom.Vec) {
	base := wsPositions(n, 11)
	ids = make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	frame = make([][]geom.Vec, frames)
	for f := range frame {
		ps := make([]geom.Vec, n)
		copy(ps, base)
		for i := 0; i < n; i += 10 {
			// A 12 m swing crosses r=10 grid cells and makes/breaks edges.
			ps[i] = geom.V2(base[i].X+12*float64(f%4), base[i].Y)
		}
		frame[f] = ps
	}
	return ids, frame
}

// TestApplyPositionsZeroAllocSteadyState pins the tentpole contract on
// the delta path: once warmed, an incremental snapshot — diff, grid
// moves, edge patch, diameter, clustering — allocates nothing.
func TestApplyPositionsZeroAllocSteadyState(t *testing.T) {
	ws := NewWorkspace()
	ids, frames := deltaAllocFrames(120, 8)
	for cycle := 0; cycle < 3; cycle++ {
		for _, ps := range frames {
			ws.ApplyPositions(ids, ps, 10)
			ws.Diameter()
			ws.MeanClustering()
		}
	}
	f := 0
	avg := testing.AllocsPerRun(100, func() {
		ws.ApplyPositions(ids, frames[f%len(frames)], 10)
		_ = ws.Diameter()
		_ = ws.MeanClustering()
		f++
	})
	if avg != 0 {
		t.Errorf("steady-state ApplyPositions allocates %v per snapshot, want 0", avg)
	}
	st := ws.Stats()
	if st.Incremental == 0 || st.FullRebuilds != 1 {
		t.Fatalf("pin did not exercise the incremental path: %+v", st)
	}
}

// TestGrowInt32PreservesPrefix: reallocation must carry the live prefix —
// the latent reuse hazard the delta mode's slot tables would trip over.
func TestGrowInt32PreservesPrefix(t *testing.T) {
	buf := growInt32(nil, 4)
	for i := range buf {
		buf[i] = int32(i + 1)
	}
	grown := growInt32(buf, 4096)
	for i := 0; i < 4; i++ {
		if grown[i] != int32(i+1) {
			t.Fatalf("growInt32 lost prefix entry %d: got %d", i, grown[i])
		}
	}
	if shrunk := growInt32(grown, 2); shrunk[0] != 1 || shrunk[1] != 2 {
		t.Fatal("growInt32 shrink lost prefix")
	}
}

// BenchmarkP4IncrementalBuild is the city-scale graph-build+metrics
// benchmark on the temporal-coherence path: the same 200-avatar snapshot
// cadence as BenchmarkP4WorkspaceBuild, with paper-default mobility (~10%
// of avatars walking per 10 s snapshot) served by ApplyPositions.
func BenchmarkP4IncrementalBuild(b *testing.B) {
	ws := NewWorkspace()
	ids, frames := deltaAllocFrames(200, 8)
	for _, ps := range frames {
		ws.ApplyPositions(ids, ps, 10)
		ws.Diameter()
		ws.MeanClustering()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.ApplyPositions(ids, frames[i%len(frames)], 10)
		ws.Diameter()
		ws.MeanClustering()
	}
}

// BenchmarkP4ScratchMovingBuild is the from-scratch control for the
// incremental benchmark: identical moving frames, rebuilt with
// FromPositions every snapshot. The incremental/scratch ratio between the
// two is the speedup the churn stats in slbench should reflect.
func BenchmarkP4ScratchMovingBuild(b *testing.B) {
	ws := NewWorkspace()
	ids, frames := deltaAllocFrames(200, 8)
	_ = ids
	ws.FromPositions(frames[0], 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.FromPositions(frames[i%len(frames)], 10)
		ws.Diameter()
		ws.MeanClustering()
	}
}
