package graph

import (
	"slmob/internal/geom"
)

// Workspace owns every buffer the snapshot-rate graph pipeline needs —
// the spatial grid, a flat CSR-style adjacency arena, and the BFS
// distance/queue/component scratch — so that building a proximity graph
// and computing its diameter and clustering performs zero heap
// allocations per snapshot once the buffers have warmed up to the
// population size. One Workspace serves one goroutine and one
// communication range at a time; it is not safe for concurrent use.
//
// Two build modes share the storage. FromPositions rebuilds the graph
// from scratch every call; ApplyPositions (delta.go) diffs the snapshot
// against the previous one and patches only what moved, reusing cached
// per-vertex clustering and per-component diameters for the untouched
// remainder. Both modes produce graphs with identical edge sets, and
// every metric computed from them — degrees, diameter, clustering — is
// bit-identical between the two.
//
// The *Graph returned by FromPositions or ApplyPositions aliases the
// workspace's arena and is valid only until the next build call.
type Workspace struct {
	grid     *geom.Grid
	gridCell float64

	pairs []int32   // flat (u, v) pair list, two entries per edge
	off   []int32   // CSR offsets, n+1 entries
	cur   []int32   // fill cursors during CSR construction
	arena []int32   // flat neighbour storage
	adj   [][]int32 // per-vertex views into arena
	g     Graph     // the reusable graph header handed back to callers

	// BFS / component scratch for Diameter.
	dist  []int32
	queue []int32
	seen  []bool
	comp  []int32 // current component under construction
	best  []int32 // largest component seen so far

	// Incremental (temporal-coherence) state for ApplyPositions.
	d     deltaState
	stats WorkspaceStats
}

// NewWorkspace returns an empty workspace. Buffers grow on demand and are
// retained across calls.
func NewWorkspace() *Workspace { return &Workspace{} }

// growInt32 returns buf resized to n, preserving the live prefix when a
// reallocation is needed — callers like the delta path's slot tables rely
// on existing entries surviving population growth.
//
//slmob:hotpath
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		nb := make([]int32, n, n+n/2+8)
		copy(nb, buf)
		return nb
	}
	return buf[:n]
}

// FromPositions builds the line-of-sight proximity graph over the given
// positions at range r into the workspace's reusable storage. It produces
// exactly the graph the package-level FromPositions builds — identical
// adjacency lists in identical order — without the per-snapshot
// allocations. The returned graph is invalidated by the next call.
//
// FromPositions discards any incremental state: a subsequent
// ApplyPositions starts from a full rebuild.
//
//slmob:hotpath
func (ws *Workspace) FromPositions(ps []geom.Vec, r float64) *Graph {
	ws.d.ok = false
	ws.d.active = false
	n := len(ps)
	if cap(ws.adj) < n {
		ws.adj = make([][]int32, n, n+n/2+8)
	}
	ws.adj = ws.adj[:n]
	ws.g = Graph{adj: ws.adj}
	if r <= 0 || n < 2 {
		for i := range ws.adj {
			ws.adj[i] = nil
		}
		return &ws.g
	}

	// The pooled grid is keyed to the query radius; a workspace is
	// typically dedicated to one communication range, so this rebuilds
	// only when the range actually changes.
	if ws.grid == nil || ws.gridCell != r {
		ws.grid = geom.NewGrid(r)
		ws.gridCell = r
	} else {
		ws.grid.Reset()
	}
	for i, p := range ps {
		ws.grid.Insert(int64(i), p)
	}

	// Pass 1: collect each unordered pair once, from its lower endpoint,
	// in the same order the incremental builder emits edges.
	ws.pairs = ws.pairs[:0]
	for i, p := range ps {
		ws.grid.VisitWithin(p, r, func(id int64, _ geom.Vec) bool {
			if j := int32(id); int(j) > i {
				ws.pairs = append(ws.pairs, int32(i), j)
			}
			return true
		})
	}
	ws.buildCSR(n)
	return &ws.g
}

// buildCSR counting-sorts ws.pairs into the CSR arena and points ws.g at
// the result. cur doubles as the degree accumulator before the prefix sum
// turns it into fill cursors.
//
//slmob:hotpath
func (ws *Workspace) buildCSR(n int) {
	ws.off = growInt32(ws.off, n+1)
	ws.cur = growInt32(ws.cur, n)
	for i := range ws.cur {
		ws.cur[i] = 0
	}
	for _, v := range ws.pairs {
		ws.cur[v]++
	}
	ws.off[0] = 0
	for i := 0; i < n; i++ {
		ws.off[i+1] = ws.off[i] + ws.cur[i]
		ws.cur[i] = ws.off[i]
	}
	ws.arena = growInt32(ws.arena, len(ws.pairs))
	for k := 0; k < len(ws.pairs); k += 2 {
		u, v := ws.pairs[k], ws.pairs[k+1]
		ws.arena[ws.cur[u]] = v
		ws.cur[u]++
		ws.arena[ws.cur[v]] = u
		ws.cur[v]++
	}
	for i := 0; i < n; i++ {
		ws.adj[i] = ws.arena[ws.off[i]:ws.off[i+1]:ws.off[i+1]]
	}
	ws.g.m = len(ws.pairs) / 2
}

// Diameter computes the longest shortest path within the largest
// connected component of the workspace's current graph — the same value
// Graph.Diameter returns — using the shared BFS buffers instead of
// per-call allocations. After an ApplyPositions build it reuses the
// previous snapshot's result when the largest component is untouched.
//
//slmob:hotpath
func (ws *Workspace) Diameter() int {
	g := &ws.g
	n := len(g.adj)
	if n == 0 {
		return 0
	}
	ws.dist = growInt32(ws.dist, n)
	ws.queue = growInt32(ws.queue, n)[:0]
	if cap(ws.seen) < n {
		ws.seen = make([]bool, n, n+n/2+8)
	}
	ws.seen = ws.seen[:n]
	for i := range ws.seen {
		ws.seen[i] = false
	}

	// Largest component, ties broken by first-seen order like
	// Graph.LargestComponent.
	ws.best = ws.best[:0]
	for s := 0; s < n; s++ {
		if ws.seen[s] {
			continue
		}
		ws.comp = ws.comp[:0]
		ws.queue = ws.queue[:0]
		ws.queue = append(ws.queue, int32(s))
		ws.seen[s] = true
		for qi := 0; qi < len(ws.queue); qi++ {
			u := ws.queue[qi]
			ws.comp = append(ws.comp, u)
			for _, v := range g.adj[u] {
				if !ws.seen[v] {
					ws.seen[v] = true
					ws.queue = append(ws.queue, v)
				}
			}
		}
		if len(ws.comp) > len(ws.best) {
			ws.best, ws.comp = ws.comp, ws.best
		}
	}
	if len(ws.best) < 2 {
		return 0
	}
	if ws.d.active {
		return ws.deltaDiameter()
	}

	diam := int32(0)
	for _, src := range ws.best {
		for i := range ws.dist {
			ws.dist[i] = -1
		}
		ws.dist[src] = 0
		ws.queue = ws.queue[:0]
		ws.queue = append(ws.queue, src)
		for qi := 0; qi < len(ws.queue); qi++ {
			u := ws.queue[qi]
			du := ws.dist[u]
			for _, v := range g.adj[u] {
				if ws.dist[v] < 0 {
					ws.dist[v] = du + 1
					ws.queue = append(ws.queue, v)
					if du+1 > diam {
						diam = du + 1
					}
				}
			}
		}
	}
	return int(diam)
}

// Graph returns the workspace's current graph — the value the latest
// build call produced. It is invalidated by the next build call.
func (ws *Workspace) Graph() *Graph { return &ws.g }

// MeanClustering returns the mean Watts–Strogatz clustering coefficient
// of the workspace's current graph. After an ApplyPositions build,
// per-vertex coefficients cached from previous snapshots are reused for
// every vertex whose two-hop neighbourhood is unchanged; the result is
// bit-identical to Graph.MeanClustering either way.
func (ws *Workspace) MeanClustering() float64 {
	if ws.d.active {
		return ws.deltaMeanClustering()
	}
	return ws.g.MeanClustering()
}
