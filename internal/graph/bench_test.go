package graph

import (
	"math"
	"testing"

	"slmob/internal/geom"
)

// crowdPositions lays out a dense, clustered crowd like a busy land
// snapshot: n avatars around a handful of attraction centres on a 256 m
// land. Deterministic, no rng dependency.
func crowdPositions(n int) []geom.Vec {
	centres := []geom.Vec{
		geom.V2(128, 132), geom.V2(152, 128), geom.V2(114, 152), geom.V2(200, 60),
	}
	ps := make([]geom.Vec, n)
	for i := range ps {
		c := centres[i%len(centres)]
		ang := float64(i) * 2.399963 // golden angle: even angular spread
		rad := 3 + 12*math.Sqrt(float64(i%97)/97)
		ps[i] = c.Add(geom.V2(rad*math.Cos(ang), rad*math.Sin(ang)))
	}
	return ps
}

// edgeList materialises the proximity edges once so the insertion
// benchmarks time only the insertion path.
func edgeList(ps []geom.Vec, r float64) [][2]int {
	g := FromPositions(ps, r)
	var edges [][2]int
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				edges = append(edges, [2]int{u, int(v)})
			}
		}
	}
	return edges
}

// BenchmarkFromPositions times the full grid-accelerated proximity
// builder at both paper ranges — the per-snapshot hot path of every
// analysis pipeline.
func BenchmarkFromPositions(b *testing.B) {
	ps := crowdPositions(100)
	for _, r := range []float64{10, 80} {
		b.Run(map[float64]string{10: "r10", 80: "r80"}[r], func(b *testing.B) {
			b.ReportAllocs()
			var m int
			for i := 0; i < b.N; i++ {
				m = FromPositions(ps, r).M()
			}
			b.ReportMetric(float64(m), "edges")
		})
	}
}

// BenchmarkEdgeInsertion isolates the satellite fix: checked AddEdge
// pays a linear duplicate scan of the adjacency list per insertion,
// unchecked insertion does not. The r=80 crowd graph is dense (mean
// degree ≈ 50), which is exactly where the scan hurt.
func BenchmarkEdgeInsertion(b *testing.B) {
	ps := crowdPositions(100)
	edges := edgeList(ps, 80)
	b.Run("checked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := New(len(ps))
			for _, e := range edges {
				if err := g.AddEdge(e[0], e[1]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("unchecked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := New(len(ps))
			for _, e := range edges {
				g.AddEdgeUnchecked(e[0], e[1])
			}
		}
	})
}
