package graph

import (
	"math"
	"testing"
	"testing/quick"

	"slmob/internal/geom"
)

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	mustEdge(t, g, 0, 1)
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
	if g.M() != 1 {
		t.Errorf("M = %d", g.M())
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 0, 3)
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Errorf("degrees = %v", g.Degrees())
	}
	d := g.Degrees()
	if d[0] != 3 || d[1] != 1 || d[2] != 1 || d[3] != 1 {
		t.Errorf("Degrees = %v", d)
	}
	if !g.HasEdge(0, 2) || g.HasEdge(1, 2) || g.HasEdge(-1, 0) {
		t.Error("HasEdge wrong")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if lc := g.LargestComponent(); len(lc) != 3 {
		t.Errorf("largest component = %v", lc)
	}
}

func TestBFSDistances(t *testing.T) {
	// Path graph 0-1-2-3-4.
	g := New(5)
	for i := 0; i < 4; i++ {
		mustEdge(t, g, i, i+1)
	}
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	d = g.BFS(-1)
	for _, x := range d {
		if x != -1 {
			t.Error("invalid source should give all -1")
		}
	}
}

func TestDiameterPathAndDisconnected(t *testing.T) {
	// Path 0-1-2-3-4 has diameter 4.
	g := New(5)
	for i := 0; i < 4; i++ {
		mustEdge(t, g, i, i+1)
	}
	if got := g.Diameter(); got != 4 {
		t.Errorf("path diameter = %d", got)
	}
	// Disconnected: path of 3 plus isolated pair; largest component wins.
	h := New(5)
	mustEdge(t, h, 0, 1)
	mustEdge(t, h, 1, 2)
	mustEdge(t, h, 3, 4)
	if got := h.Diameter(); got != 2 {
		t.Errorf("largest-component diameter = %d, want 2", got)
	}
	// The paper's Apfel Land artefact: small r gives small components and
	// therefore a SMALLER diameter than large r. Emulate with two graphs.
	small := New(10) // five disconnected pairs
	for i := 0; i < 10; i += 2 {
		mustEdge(t, small, i, i+1)
	}
	big := New(10) // one path through all vertices
	for i := 0; i < 9; i++ {
		mustEdge(t, big, i, i+1)
	}
	if small.Diameter() >= big.Diameter() {
		t.Errorf("expected fragmented diameter %d < connected diameter %d",
			small.Diameter(), big.Diameter())
	}
}

func TestDiameterTrivial(t *testing.T) {
	if New(0).Diameter() != 0 {
		t.Error("empty graph diameter")
	}
	if New(3).Diameter() != 0 {
		t.Error("edgeless graph diameter")
	}
}

func TestClusteringTriangle(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 0, 2)
	for u := 0; u < 3; u++ {
		if got := g.LocalClustering(u); got != 1 {
			t.Errorf("triangle clustering(%d) = %v", u, got)
		}
	}
	if got := g.MeanClustering(); got != 1 {
		t.Errorf("triangle mean clustering = %v", got)
	}
}

func TestClusteringStar(t *testing.T) {
	// A star has no closed triangles: centre coefficient 0, leaves degree 1.
	g := New(5)
	for i := 1; i < 5; i++ {
		mustEdge(t, g, 0, i)
	}
	if got := g.MeanClustering(); got != 0 {
		t.Errorf("star clustering = %v", got)
	}
}

func TestClusteringPartial(t *testing.T) {
	// Vertex 0 adjacent to 1,2,3; only edge {1,2} closed: C(0) = 1/3.
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 0, 3)
	mustEdge(t, g, 1, 2)
	if got := g.LocalClustering(0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("clustering = %v, want 1/3", got)
	}
}

func TestMeanClusteringEmpty(t *testing.T) {
	if got := New(0).MeanClustering(); got != 0 {
		t.Errorf("empty mean clustering = %v", got)
	}
}

func TestFromPositionsSimple(t *testing.T) {
	ps := []geom.Vec{
		geom.V2(0, 0), geom.V2(5, 0), geom.V2(11, 0), geom.V2(100, 100),
	}
	g := FromPositions(ps, 10)
	if !g.HasEdge(0, 1) {
		t.Error("missing edge 0-1 at distance 5")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge 0-2 at distance 11")
	}
	if !g.HasEdge(1, 2) {
		t.Error("missing edge 1-2 at distance 6")
	}
	if g.Degree(3) != 0 {
		t.Error("distant vertex should be isolated")
	}
}

func TestFromPositionsEdgeAtExactRange(t *testing.T) {
	ps := []geom.Vec{geom.V2(0, 0), geom.V2(10, 0)}
	g := FromPositions(ps, 10)
	if !g.HasEdge(0, 1) {
		t.Error("distance exactly r should be connected")
	}
}

func TestFromPositionsDegenerate(t *testing.T) {
	if g := FromPositions(nil, 10); g.N() != 0 || g.M() != 0 {
		t.Error("nil positions")
	}
	ps := []geom.Vec{geom.V2(0, 0), geom.V2(1, 1)}
	if g := FromPositions(ps, 0); g.M() != 0 {
		t.Error("r=0 should produce no edges")
	}
}

func TestFromPositionsCoincidentPoints(t *testing.T) {
	// All avatars on the same spot (a dance floor in the limit): complete
	// graph, clustering 1, diameter 1.
	ps := make([]geom.Vec, 8)
	for i := range ps {
		ps[i] = geom.V2(50, 50)
	}
	g := FromPositions(ps, 10)
	if g.M() != 8*7/2 {
		t.Errorf("M = %d, want 28", g.M())
	}
	if g.Diameter() != 1 {
		t.Errorf("diameter = %d", g.Diameter())
	}
	if g.MeanClustering() != 1 {
		t.Errorf("clustering = %v", g.MeanClustering())
	}
}

// TestFromPositionsMatchesBruteForceProperty checks grid-accelerated
// construction against the O(n^2) definition.
func TestFromPositionsMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint16) bool {
		s := uint64(seed)*2654435761 + 1
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / float64(1<<53) * 256
		}
		const n = 40
		ps := make([]geom.Vec, n)
		for i := range ps {
			ps[i] = geom.V2(next(), next())
		}
		r := 10 + next()/8
		g := FromPositions(ps, r)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := ps[i].DistXY(ps[j]) <= r
				if g.HasEdge(i, j) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestComponentsPartitionProperty: components partition the vertex set.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed uint16) bool {
		s := uint64(seed) + 7
		next := func() uint64 {
			s = s*6364136223846793005 + 1442695040888963407
			return s >> 33
		}
		const n = 30
		g := New(n)
		for k := 0; k < 25; k++ {
			u, v := int(next()%n), int(next()%n)
			if u != v && !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		seen := make([]bool, n)
		total := 0
		for _, c := range g.Components() {
			for _, u := range c {
				if seen[u] {
					return false
				}
				seen[u] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
