package slmob

// Live-query tests: the digest parity gate — every cumulative Analysis
// fetched from a live query endpoint, mid-run or sealed, must be
// bit-identical (equal sha256 digest) to what an offline windowed replay
// of the same trace produces — plus the concurrent-reader soak.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"slmob/internal/core"
	"slmob/internal/trace"
)

// offlineWindowed replays the estate offline with the given window and
// returns the whole-trace analysis with its window series.
func offlineWindowed(t *testing.T, est Estate, window int64) *EstateAnalysis {
	t.Helper()
	ctx := context.Background()
	src, err := NewEstateSource(est, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := CollectEstateSource(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := trace.NewEstateReplay(nil, trs)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := AnalyzeEstateStream(ctx, replay, WithWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	return offline
}

// digestOf encodes one analysis with the deterministic checkpoint codec
// and returns its blob digest — the value a live query reply carries.
func digestOf(t *testing.T, an *core.Analysis) string {
	t.Helper()
	blob, err := core.EncodeAnalysis(an)
	if err != nil {
		t.Fatal(err)
	}
	return core.BlobDigest(blob)
}

// prefixDigest is the expected cumulative digest after the first k
// windows sealed: the merge of that window prefix, exactly as the live
// service recomputes it.
func prefixDigest(t *testing.T, windows []*EstateAnalysis, k int64, region int) string {
	t.Helper()
	parts := make([]*core.Analysis, k)
	for i := range parts {
		if region < 0 {
			parts[i] = windows[i].Global
		} else {
			parts[i] = windows[i].Regions[region]
		}
	}
	merged, err := core.MergeAnalyses(parts)
	if err != nil {
		t.Fatal(err)
	}
	return digestOf(t, merged)
}

// TestQueryLiveParityWithOfflineReplay is the analytics acceptance gate:
// serve an estate with the query endpoint enabled, poll cumulative
// analyses while the measurement runs, fetch the sealed result at the
// end — and require every digest, mid-run and final, global and
// per-region, to equal the digest an offline windowed replay of the
// identical scenario produces.
func TestQueryLiveParityWithOfflineReplay(t *testing.T) {
	est := PaperEstate(23)
	est.Duration = 1200
	const window = 600

	offline := offlineWindowed(t, est, window)
	// Samples run t=10..1200; the final one opens window 2, so three
	// windows seal in total.
	if len(offline.Windows) != 3 {
		t.Fatalf("offline replay sealed %d windows, want 3", len(offline.Windows))
	}

	svc, err := ServeEstate(context.Background(), est,
		WithQueryAddr("127.0.0.1:0"), WithWindow(window),
		WithWarp(2000), WithTickEvery(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()

	qc, err := DialQuery(svc.QueryAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	// Poll the cumulative global analysis while the clock runs,
	// recording one digest per distinct sealed-window count.
	type seen struct {
		digest string
		sealed bool
	}
	observed := map[int64]seen{}
	for {
		res, err := qc.Cumulative(-1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Analysis != nil {
			if prev, ok := observed[res.Windows]; ok && prev.digest != res.Digest {
				t.Fatalf("windows=%d served two digests: %s then %s", res.Windows, prev.digest, res.Digest)
			}
			observed[res.Windows] = seen{digest: res.Digest, sealed: res.Sealed}
		}
		if res.Sealed {
			break
		}
		select {
		case <-svc.Done():
		case <-time.After(2 * time.Millisecond):
		}
	}

	// Every observed mid-run cumulative must equal the offline merge of
	// the same window prefix; the sealed one must equal the whole-trace
	// analysis (which the merge invariant makes the same value).
	if len(observed) == 0 {
		t.Fatal("no cumulative analyses observed")
	}
	for k, s := range observed {
		want := prefixDigest(t, offline.Windows, k, -1)
		if s.digest != want {
			t.Errorf("cumulative after %d windows: digest %s, want offline %s", k, s.digest, want)
		}
	}
	final, ok := observed[int64(len(offline.Windows))]
	if !ok || !final.sealed {
		t.Fatalf("never observed the sealed whole-trace cumulative (observed %v)", observed)
	}
	if want := digestOf(t, offline.Global); final.digest != want {
		t.Errorf("sealed cumulative digest %s, want whole-trace %s", final.digest, want)
	}

	// Sealed per-region cumulatives against the offline regions.
	for i := range offline.Regions {
		res, err := qc.Cumulative(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := digestOf(t, offline.Regions[i]); res.Digest != want {
			t.Errorf("region %d sealed digest %s, want %s", i, res.Digest, want)
		}
		assertAnalysisParity(t, fmt.Sprintf("live region %d", i), res.Analysis, offline.Regions[i])
	}

	// Individual sealed windows against the offline window series.
	for k := range offline.Windows {
		res, err := qc.Window(-1, int64(k))
		if err != nil {
			t.Fatal(err)
		}
		if want := digestOf(t, offline.Windows[k].Global); res.Digest != want {
			t.Errorf("window %d digest %s, want %s", k, res.Digest, want)
		}
	}

	if err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestQueryConcurrentReaders soaks the endpoint: many readers hammer
// cumulative, window, and stats queries concurrently while the estate
// runs. Replies must stay consistent — two replies describing the same
// sealed-window count carry the same digest — and the run must survive
// the read load without a server fault (reader drops are policy, not
// faults).
func TestQueryConcurrentReaders(t *testing.T) {
	est := PaperEstate(11)
	est.Duration = 1200
	svc, err := ServeEstate(context.Background(), est,
		WithQueryAddr("127.0.0.1:0"), WithWindow(300),
		WithWarp(2000), WithTickEvery(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()

	const readers = 12
	var (
		mu      sync.Mutex
		digests = map[int64]string{}
	)
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			qc, err := DialQuery(svc.QueryAddr())
			if err != nil {
				errs <- err
				return
			}
			defer qc.Close()
			for {
				res, err := qc.Cumulative(-1)
				if err != nil {
					errs <- fmt.Errorf("reader %d: cumulative: %w", r, err)
					return
				}
				if res.Analysis != nil {
					mu.Lock()
					if prev, ok := digests[res.Windows]; ok && prev != res.Digest {
						mu.Unlock()
						errs <- fmt.Errorf("reader %d: windows=%d digest %s, another reader saw %s",
							r, res.Windows, res.Digest, prev)
						return
					}
					digests[res.Windows] = res.Digest
					mu.Unlock()
					if _, err := qc.Window(-1, -1); err != nil {
						errs <- fmt.Errorf("reader %d: window: %w", r, err)
						return
					}
				}
				if _, err := qc.Stats(); err != nil {
					errs <- fmt.Errorf("reader %d: stats: %w", r, err)
					return
				}
				if res.Sealed {
					errs <- nil
					return
				}
			}
		}(r)
	}
	select {
	case <-svc.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("estate did not finish under read load")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if len(digests) == 0 {
		t.Fatal("soak observed no analyses")
	}
	st := func() QueryStats {
		qc, err := DialQuery(svc.QueryAddr())
		if err != nil {
			t.Fatal(err)
		}
		defer qc.Close()
		st, err := qc.Stats()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}()
	if !st.Sealed {
		t.Error("service not sealed after the run")
	}
	if st.Queries == 0 {
		t.Error("service counted no queries after the soak")
	}
	if err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}
