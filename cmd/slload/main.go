// Command slload is the serving-path load harness: it floods a live
// estate with thousands of concurrent slp clients — observer monitors
// subscribed to map pushes, optional in-world avatars, and analytics
// readers polling the live query endpoint — and reports connection
// counts, connections-per-core, reply latency quantiles, and server
// faults as JSON.
//
// With no -directory it self-hosts a preset estate with a held clock,
// connects every client, releases the clock, and sustains the mix for
// -run-for of wall time (or until the estate's simulated duration
// elapses). The CI smoke gate runs it against the city preset with
// -min-conns 1000 and requires zero server faults: under the
// drop-slow-consumer policy a healthy, draining client must never be
// disconnected, regardless of how many others are connected.
//
// Usage:
//
//	slload -estate city -observers 640 -readers 400 -warp 1200 -run-for 20s -min-conns 1000
//	slload -estate city -aoi-avatars 800 -aoi-radius 96 -observers 64 -min-conns 800
//	slload -directory 127.0.0.1:7700 -observers 100 -readers 50
//
// The JSON report includes a per-kind mix breakdown (observer, avatar,
// aoi-avatar) with bytes-per-push, the number the AOI bandwidth gate
// reads.
//
// Exit status is 1 when the run records any server fault or connects
// fewer clients than -min-conns.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"slmob/internal/load"
)

func main() {
	var (
		directory  = flag.String("directory", "", "attack a running estate via its directory endpoint (empty: self-host)")
		estate     = flag.String("estate", "paper", "self-hosted estate preset: paper (1x3), mainland (4x4), or city (8x8)")
		seed       = flag.Uint64("seed", 1, "self-hosted simulation seed")
		duration   = flag.Int64("duration", 0, "self-hosted estate duration in sim seconds (0: preset default)")
		warp       = flag.Float64("warp", 600, "self-hosted clock rate")
		simWorkers = flag.Int("sim-workers", 0, "self-hosted parallel region stepping: goroutines per tick (0 or 1: serial)")
		window     = flag.Int64("window", 600, "self-hosted analysis window in sim seconds")
		observers  = flag.Int("observers", 64, "observer sessions subscribed to map pushes")
		avatars    = flag.Int("avatars", 0, "in-world avatar sessions on whole-land coarse pushes")
		aoiAvatars = flag.Int("aoi-avatars", 0, "in-world avatar sessions subscribed with an area-of-interest radius")
		aoiRadius  = flag.Float64("aoi-radius", 96, "AOI avatars' subscription radius in metres")
		aoiDelta   = flag.Bool("aoi-delta", true, "AOI avatars request delta-encoded pushes")
		readers    = flag.Int("readers", 32, "analytics reader connections polling the query endpoint")
		tau        = flag.Int64("tau", 0, "observer subscription period in sim seconds (0: the paper's 10s)")
		password   = flag.String("password", "", "estate login password")
		runFor     = flag.Duration("run-for", 10*time.Second, "load phase length in wall time")
		pollEvery  = flag.Duration("poll-every", 50*time.Millisecond, "each reader's query period")
		tickEvery  = flag.Duration("tick-every", time.Millisecond, "self-hosted tick interval; also the per-interval wall budget that -max-tick-overruns counts against")
		jsonPath   = flag.String("json", "", "write the report as JSON to this file (default: stdout)")
		minConns   = flag.Int("min-conns", 0, "fail unless at least this many clients connected")
		maxOverrun = flag.Int64("max-tick-overruns", -1, "fail when more than this many tick intervals overran the budget (-1: no assertion)")
		tickPace   = flag.Bool("require-tick-pace", false, "fail when mean stepping time per interval exceeds the tick budget (the clock cannot keep up)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := load.Run(ctx, load.Config{
		Directory:   *directory,
		Preset:      *estate,
		Seed:        *seed,
		SimDuration: *duration,
		Warp:        *warp,
		SimWorkers:  *simWorkers,
		Window:      *window,
		Observers:   *observers,
		Avatars:     *avatars,
		AOIAvatars:  *aoiAvatars,
		AOIRadius:   *aoiRadius,
		AOIDelta:    *aoiDelta,
		Readers:     *readers,
		Tau:         *tau,
		Password:    *password,
		RunFor:      *runFor,
		PollEvery:   *pollEvery,
		TickEvery:   *tickEvery,
	})
	if err != nil {
		log.Fatalf("slload: %v", err)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("slload: encode report: %v", err)
	}
	blob = append(blob, '\n')
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			log.Fatalf("slload: write report: %v", err)
		}
	} else {
		os.Stdout.Write(blob)
	}

	fmt.Fprintf(os.Stderr,
		"slload: %d connected (%d failed), %.0f conns/core, %d pushes (%.0f B/push), %d replies, reader p99 %.2fms, %d faults\n",
		rep.Connected, rep.ConnectFailures, rep.ConnsPerCore, rep.Pushes, rep.BytesPerPush,
		rep.Replies, rep.LatencyMs.P99, rep.ServerFaults)
	for _, kind := range []string{load.KindObserver, load.KindAvatar, load.KindAOIAvatar} {
		if ms := rep.Mix[kind]; ms != nil {
			fmt.Fprintf(os.Stderr, "slload:   %-10s %4d conns, %7d pushes, %.0f B/push\n",
				kind, ms.Conns, ms.Pushes, ms.BytesPerPush)
		}
	}
	if rep.TickIntervals > 0 {
		fmt.Fprintf(os.Stderr,
			"slload:   ticks: %d workers, %d intervals / %d steps, mean %.3fms max %.3fms (budget %.3fms), %d over budget\n",
			rep.SimWorkers, rep.TickIntervals, rep.TickSteps,
			rep.TickMeanMs, rep.TickMaxMs, rep.TickBudgetMs, rep.TickOverBudget)
	}
	if rep.ServerFaults > 0 {
		log.Fatalf("slload: FAIL — %d server faults (errors: %v)", rep.ServerFaults, rep.Errors)
	}
	if rep.Connected < *minConns {
		log.Fatalf("slload: FAIL — %d clients connected, need %d", rep.Connected, *minConns)
	}
	if *maxOverrun >= 0 && rep.TickOverBudget > *maxOverrun {
		log.Fatalf("slload: FAIL — %d tick intervals over the %.3fms budget, allow %d (clock fell behind)",
			rep.TickOverBudget, rep.TickBudgetMs, *maxOverrun)
	}
	// Mean-over-budget means the carry loop accumulates sim time faster
	// than stepping retires it: the warped clock has permanently fallen
	// behind. Isolated spikes (GC, scheduler) are caught up by the next
	// interval's step batch and are policed separately by
	// -max-tick-overruns.
	if *tickPace && rep.TickIntervals > 0 && rep.TickMeanMs > rep.TickBudgetMs {
		log.Fatalf("slload: FAIL — mean tick interval %.3fms exceeds the %.3fms budget (clock cannot sustain warp)",
			rep.TickMeanMs, rep.TickBudgetMs)
	}
}
