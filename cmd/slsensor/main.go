// Command slsensor drives the paper's first monitoring architecture
// against a running region server: it connects as a builder avatar,
// deploys a grid of in-world sensor objects over the slp protocol, runs
// the external HTTP collector the sensors flush to, and writes the merged
// trace when the crawl duration elapses.
//
// Deployment fails on private lands (try -land dance on slsim) exactly as
// it did for the paper's authors.
//
// Usage (against a running cmd/slsim hosting a public land):
//
//	slsensor -addr 127.0.0.1:7600 -listen 127.0.0.1:7610 -grid 4 -out apfel-sensors.sltr
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"slmob/internal/sensor"
	"slmob/internal/slp"
	"slmob/internal/trace"
	"slmob/internal/world"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7600", "region server address")
		listen   = flag.String("listen", "127.0.0.1:7610", "collector HTTP listen address")
		name     = flag.String("name", "builder-01", "builder avatar name")
		password = flag.String("password", "", "login password")
		grid     = flag.Int("grid", 4, "deploy an NxN sensor grid")
		rng      = flag.Float64("range", sensor.MaxRange, "sensing radius (capped at 96)")
		period   = flag.Int64("period", 10, "scan period in sim seconds")
		duration = flag.Int64("duration", 86400, "collection length in sim seconds")
		out      = flag.String("out", "sensors.sltr", "output trace file")
	)
	flag.Parse()

	collector := sensor.NewCollector()
	httpSrv := &http.Server{Addr: *listen, Handler: collector}
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("slsensor: collector: %v", err)
		}
	}()

	client, err := slp.Dial(*addr, *name, *password, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	w := client.Welcome()
	fmt.Printf("slsensor: connected to %q (size %g)\n", w.Land, w.Size)

	land := world.LandConfig{Name: w.Land, Size: w.Size}
	collectorURL := "http://" + *listen + "/flush"
	deployed := 0
	for _, spec := range sensor.GridSpecs(land, *grid, *rng, *period, collectorURL, true) {
		rep, err := client.CreateObject(slp.ObjectCreate{
			Kind: slp.ObjectSensor, Pos: spec.Pos, Range: spec.Range,
			Period: spec.Period, Collector: spec.Collector,
		}, 10*time.Second)
		if err != nil {
			log.Fatalf("slsensor: deployment rejected: %v", err)
		}
		deployed++
		if rep.ExpiresAt > 0 {
			fmt.Printf("slsensor: object %d deployed at %v (expires at sim %d)\n",
				rep.ObjectID, spec.Pos, rep.ExpiresAt)
		} else {
			fmt.Printf("slsensor: object %d deployed at %v (no expiry)\n", rep.ObjectID, spec.Pos)
		}
	}
	fmt.Printf("slsensor: %d sensors live; collecting for %d sim seconds\n", deployed, *duration)

	// Wait out the measurement in sim time by polling the server clock.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := w.SimTime
	for {
		select {
		case <-ctx.Done():
			goto done
		case <-time.After(time.Second):
			now, err := client.Ping(5 * time.Second)
			if err != nil {
				log.Printf("slsensor: server gone: %v", err)
				goto done
			}
			if now-start >= *duration {
				goto done
			}
		}
	}
done:
	_ = httpSrv.Close()
	// Drain the collector's merged readings as a snapshot stream.
	tr, err := trace.Collect(context.Background(), collector.Source(w.Land, *period), "", 0)
	if err != nil {
		log.Fatal(err)
	}
	tr.Meta["size"] = fmt.Sprintf("%g", w.Size)
	if err := trace.WriteFile(tr, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slsensor: %s\n", tr.Summarize())
	fmt.Printf("slsensor: %d flushes received; wrote %s\n", collector.Flushes(), *out)
}
