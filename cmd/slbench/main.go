// Command slbench regenerates the paper's complete evaluation: it
// simulates all three target lands for 24 hours, runs the full analysis,
// prints the paper-vs-measured report (the source of EXPERIMENTS.md),
// renders every figure panel as an ASCII chart, and optionally exports
// the panels as CSV.
//
// Usage:
//
//	slbench -seed 1 -out figures/
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"slmob/internal/core"
	"slmob/internal/experiment"
	"slmob/internal/world"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "simulation seed")
		duration = flag.Int64("duration", world.DayDuration, "measurement length in sim seconds")
		out      = flag.String("out", "", "write figure CSVs to this directory")
		ascii    = flag.Bool("ascii", true, "render ASCII figures")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	fmt.Printf("slbench: simulating the three target lands for %d sim seconds (seed %d)...\n",
		*duration, *seed)
	runs, err := experiment.RunLands(ctx, *seed, *duration, core.PaperTau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slbench: simulation + analysis took %s\n\n", time.Since(start).Round(time.Millisecond))

	for _, run := range runs {
		fmt.Println(run.Analysis.Summary.String())
	}
	fmt.Println()

	rep, err := experiment.BuildReport(runs)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fails := rep.Failures()
	fmt.Printf("\nslbench: %d/%d rows within tolerance\n\n", len(rep.Rows)-len(fails), len(rep.Rows))

	figs, err := experiment.Figures(runs)
	if err != nil {
		log.Fatal(err)
	}
	if *ascii {
		for _, fig := range figs {
			if err := fig.RenderASCII(os.Stdout, 72, 14); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, fig := range figs {
			f, err := os.Create(filepath.Join(*out, fig.ID+".csv"))
			if err != nil {
				log.Fatal(err)
			}
			if err := fig.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
		fmt.Printf("slbench: wrote %d figure CSVs to %s\n", len(figs), *out)
	}
}
