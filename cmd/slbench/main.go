// Command slbench regenerates the paper's complete evaluation: it
// simulates all three target lands for 24 hours, runs the full analysis,
// prints the paper-vs-measured report (the source of EXPERIMENTS.md),
// renders every figure panel as an ASCII chart, and optionally exports
// the panels as CSV.
//
// With -land it benchmarks a single region instead — the short-cycle
// smoke configuration CI runs — and with -json it writes the wall time,
// allocation rate, and headline metrics as machine-readable JSON, the
// format of the BENCH_*.json performance trajectory. The committed
// baseline gates both metric drift and allocation regressions in CI.
//
// With -cpuprofile / -memprofile it writes pprof profiles of the
// simulation+analysis run, the how-to-profile recipe of DESIGN.md §6.
//
// Usage:
//
//	slbench -seed 1 -out figures/
//	slbench -land apfel -duration 3600 -ascii=false -json BENCH_smoke.json
//	slbench -land apfel -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"slmob"
	"slmob/internal/core"
	"slmob/internal/experiment"
	"slmob/internal/graph"
	"slmob/internal/load"
	"slmob/internal/slp"
	"slmob/internal/stats"
	"slmob/internal/world"
)

// landMetrics is one land's headline numbers in the JSON output.
type landMetrics struct {
	Name           string  `json:"name"`
	Unique         int     `json:"unique"`
	MeanConcurrent float64 `json:"mean_concurrent"`
	MaxConcurrent  int     `json:"max_concurrent"`
	CTMedianR10    float64 `json:"ct_median_r10_s"`
	ICTMedianR10   float64 `json:"ict_median_r10_s"`
	DegZeroFracR10 float64 `json:"deg_zero_frac_r10"`
}

// windowTiming is one window's share of the windowed replay pass.
type windowTiming struct {
	Index     int64   `json:"index"`
	Snapshots int     `json:"snapshots"`
	WallMS    float64 `json:"wall_ms"`
}

// incrementalStats is the JSON view of the analysis core's
// temporal-coherence engine over a run: what fraction of per-range
// snapshot graphs were patched from the previous snapshot instead of
// rebuilt, the per-snapshot diff rates behind that, and the metric-cache
// hit ratios.
type incrementalStats struct {
	// Snapshots counts per-range graph builds (snapshots × ranges).
	Snapshots int64 `json:"snapshots"`
	// IncrementalFrac is the fraction of builds served by the delta path.
	IncrementalFrac float64 `json:"incremental_frac"`
	// FullRebuilds counts scratch builds (first snapshots, churn
	// fallbacks).
	FullRebuilds int64 `json:"full_rebuilds"`
	// MovedPerSnapshot / ArrivedPerSnapshot / DepartedPerSnapshot are the
	// mean per-build diff rates over the diffed builds.
	MovedPerSnapshot    float64 `json:"moved_per_snapshot"`
	ArrivedPerSnapshot  float64 `json:"arrived_per_snapshot"`
	DepartedPerSnapshot float64 `json:"departed_per_snapshot"`
	// EdgesChangedPerSnapshot is the mean number of adjacency patches
	// (adds + removes) per incremental build.
	EdgesChangedPerSnapshot float64 `json:"edges_changed_per_snapshot"`
	// DiamReuseFrac / CCReuseFrac are the metric-cache hit ratios:
	// diameters answered from the component cache, and per-vertex
	// clustering coefficients served without recomputation.
	DiamReuseFrac float64 `json:"diam_reuse_frac"`
	CCReuseFrac   float64 `json:"cc_reuse_frac"`
}

// incrementalOf condenses summed workspace counters into the JSON block.
func incrementalOf(st graph.WorkspaceStats) *incrementalStats {
	if st.Snapshots == 0 {
		return nil
	}
	out := &incrementalStats{
		Snapshots:       st.Snapshots,
		IncrementalFrac: float64(st.Incremental) / float64(st.Snapshots),
		FullRebuilds:    st.FullRebuilds,
	}
	diffed := st.Snapshots // every ApplyPositions call diffs (or is the first build)
	out.MovedPerSnapshot = float64(st.Moved) / float64(diffed)
	out.ArrivedPerSnapshot = float64(st.Arrived) / float64(diffed)
	out.DepartedPerSnapshot = float64(st.Departed) / float64(diffed)
	if st.Incremental > 0 {
		out.EdgesChangedPerSnapshot = float64(st.EdgesAdded+st.EdgesRemoved) / float64(st.Incremental)
	}
	if n := st.DiamReused + st.DiamComputed; n > 0 {
		out.DiamReuseFrac = float64(st.DiamReused) / float64(n)
	}
	if n := st.CCReused + st.CCComputed; n > 0 {
		out.CCReuseFrac = float64(st.CCReused) / float64(n)
	}
	return out
}

// churnRun is one churn-sweep preset's measurement: wall time plus the
// incremental-hit profile under that mobility level. The baseline gate
// compares wall times, so a fallback-threshold change that regresses the
// high-churn preset fails CI.
type churnRun struct {
	Level       string            `json:"level"`
	WallMS      int64             `json:"wall_ms"`
	Incremental *incrementalStats `json:"incremental,omitempty"`
}

// benchOutput is the JSON artifact schema.
type benchOutput struct {
	Seed        uint64 `json:"seed"`
	DurationSec int64  `json:"duration_sec"`
	Tau         int64  `json:"tau_sec"`
	WallMS      int64  `json:"wall_ms"`
	// AllocsPerSnapshot is the heap-allocation rate of the whole
	// simulate+analyse run, normalised per snapshot per land — the number
	// the CI gate watches for allocation regressions in the hot path.
	AllocsPerSnapshot float64       `json:"allocs_per_snapshot"`
	Lands             []landMetrics `json:"lands"`

	// Windowed replay pass (-window): total wall time of the windowed
	// analysis over the first land's trace, plus per-window timing, so
	// the baseline gate covers window-rollover cost too.
	WindowSec      int64          `json:"window_sec,omitempty"`
	WindowedWallMS int64          `json:"windowed_wall_ms,omitempty"`
	Windows        []windowTiming `json:"windows,omitempty"`

	// Incremental reports how the temporal-coherence graph engine served
	// the main run, summed over all lands and ranges.
	Incremental *incrementalStats `json:"incremental,omitempty"`
	// ChurnSweep holds the -churn-sweep measurements (low/medium/high
	// mobility presets), in preset order.
	ChurnSweep []churnRun `json:"churn_sweep,omitempty"`
	// QueryBench measures the live analytics query endpoint: round-trip
	// latency quantiles against a sealed served estate.
	QueryBench *queryBench `json:"query_bench,omitempty"`
	// TickBench measures the parallel tick engine: whole-estate tick wall
	// time and throughput at several worker counts, per preset.
	TickBench []tickBench `json:"tick_bench,omitempty"`
	// ServingBench measures the map-serving path: per-kind bytes-per-push
	// for whole-land versus AOI-delta avatar subscribers on a short
	// self-hosted estate.
	ServingBench *servingBench `json:"serving_bench,omitempty"`
}

// servingBench is the -serving-bench measurement: a held paper estate is
// loaded with observer, whole-land avatar, and AOI-delta avatar
// contingents; the block records each kind's bandwidth and the reduction
// interest management buys.
type servingBench struct {
	Observers  int    `json:"observers"`
	Avatars    int    `json:"avatars"`
	AOIAvatars int    `json:"aoi_avatars"`
	Pushes     uint64 `json:"pushes"`
	// ServerFaults must be zero: every bench client drains promptly.
	ServerFaults       int     `json:"server_faults"`
	AvatarBytesPerPush float64 `json:"avatar_bytes_per_push"`
	AOIBytesPerPush    float64 `json:"aoi_bytes_per_push"`
	// FullToAOIRatio is avatar over AOI bytes-per-push — the factor the
	// baseline gate keeps from collapsing.
	FullToAOIRatio float64 `json:"full_to_aoi_ratio"`
}

// tickBench is one estate preset's -tick-bench measurement: the same
// seed stepped through the same number of whole-estate ticks at each
// worker count. Worker count never changes the simulation (the
// differential gates pin that); these runs measure only wall time.
type tickBench struct {
	Estate  string `json:"estate"`
	Regions int    `json:"regions"`
	Ticks   int64  `json:"ticks"`
	// Cores is the bench machine's CPU count — the scaling gate only
	// demands its multicore speedup factor on machines that have the
	// cores to show it.
	Cores int       `json:"cores"`
	Runs  []tickRun `json:"runs"`
}

// tickRun is one worker count's measurement within a tickBench.
type tickRun struct {
	Workers     int     `json:"workers"`
	WallMS      float64 `json:"wall_ms"`
	TicksPerSec float64 `json:"ticks_per_sec"`
	// Speedup is this run's throughput over the serial run's.
	Speedup float64 `json:"speedup"`
}

// tickThroughput returns the run entry for a worker count, nil if absent.
func (tb tickBench) run(workers int) *tickRun {
	for i := range tb.Runs {
		if tb.Runs[i].Workers == workers {
			return &tb.Runs[i]
		}
	}
	return nil
}

// tickBenchRun steps one estate preset for a fixed number of ticks at
// each worker count, measuring whole-estate tick throughput. Every run
// rebuilds the estate from the same seed, so each one performs the
// identical simulation work — construction and warmup are excluded from
// the timed span.
func tickBenchRun(ctx context.Context, cfg world.EstateConfig, ticks int64) (tickBench, error) {
	tb := tickBench{
		Estate:  cfg.Name,
		Regions: cfg.Rows * cfg.Cols,
		Ticks:   ticks,
		Cores:   runtime.NumCPU(),
	}
	for _, workers := range []int{1, 2, 4, 8} {
		if err := ctx.Err(); err != nil {
			return tb, err
		}
		c := cfg
		c.SimWorkers = workers
		sim, err := world.NewEstateSim(c)
		if err != nil {
			return tb, err
		}
		start := time.Now()
		sim.RunUntil(ticks)
		wall := time.Since(start)
		sim.Close()
		run := tickRun{
			Workers:     workers,
			WallMS:      float64(wall.Microseconds()) / 1000,
			TicksPerSec: float64(ticks) / wall.Seconds(),
		}
		if serial := tb.run(1); serial != nil && serial.TicksPerSec > 0 {
			run.Speedup = run.TicksPerSec / serial.TicksPerSec
		} else if workers == 1 {
			run.Speedup = 1
		}
		tb.Runs = append(tb.Runs, run)
	}
	return tb, nil
}

// queryBench is the -query-bench measurement: a served estate is run to
// completion and its analytics endpoint hammered with a rotation of
// cumulative, stats, and window queries.
type queryBench struct {
	Queries       int     `json:"queries"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	RepliesPerSec float64 `json:"replies_per_sec"`
	// BlobBytes is the sealed cumulative analysis' encoded size — the
	// payload every cumulative query carries.
	BlobBytes int `json:"blob_bytes"`
}

func metricsOf(an *core.Analysis) landMetrics {
	med := func(w *stats.Weighted) float64 {
		if w.N() == 0 {
			return 0
		}
		return w.Median()
	}
	cs := an.Contacts[core.BluetoothRange]
	return landMetrics{
		Name:           an.Land,
		Unique:         an.Summary.Unique,
		MeanConcurrent: an.Summary.MeanConcurrent,
		MaxConcurrent:  an.Summary.MaxConcurrent,
		CTMedianR10:    med(cs.CT),
		ICTMedianR10:   med(cs.ICT),
		DegZeroFracR10: an.Nets[core.BluetoothRange].DegreeZeroFraction(),
	}
}

// compareBaseline checks the fresh metrics against a committed baseline
// with a generous relative tolerance — the gate catches distribution
// shifts, gross slowdowns, and allocation regressions, not
// machine-to-machine noise.
func compareBaseline(fresh benchOutput, path string, tol, wallTol, allocTol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchOutput
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if base.Seed != fresh.Seed || base.DurationSec != fresh.DurationSec || base.Tau != fresh.Tau {
		return fmt.Errorf("baseline ran seed=%d duration=%d tau=%d, this run seed=%d duration=%d tau=%d",
			base.Seed, base.DurationSec, base.Tau, fresh.Seed, fresh.DurationSec, fresh.Tau)
	}
	within := func(what string, got, want float64) error {
		if diff := math.Abs(got - want); diff > tol*math.Max(math.Abs(want), 1) {
			return fmt.Errorf("%s = %v, baseline %v (tolerance %.0f%%)", what, got, want, tol*100)
		}
		return nil
	}
	baseLands := make(map[string]landMetrics, len(base.Lands))
	for _, lm := range base.Lands {
		baseLands[lm.Name] = lm
	}
	for _, lm := range fresh.Lands {
		want, ok := baseLands[lm.Name]
		if !ok {
			return fmt.Errorf("land %q missing from baseline", lm.Name)
		}
		checks := []error{
			within(lm.Name+" unique", float64(lm.Unique), float64(want.Unique)),
			within(lm.Name+" mean concurrent", lm.MeanConcurrent, want.MeanConcurrent),
			within(lm.Name+" max concurrent", float64(lm.MaxConcurrent), float64(want.MaxConcurrent)),
			within(lm.Name+" CT median r10", lm.CTMedianR10, want.CTMedianR10),
			within(lm.Name+" ICT median r10", lm.ICTMedianR10, want.ICTMedianR10),
			within(lm.Name+" deg-zero frac r10", lm.DegZeroFracR10, want.DegZeroFracR10),
		}
		for _, err := range checks {
			if err != nil {
				return err
			}
		}
	}
	if base.WallMS > 0 && float64(fresh.WallMS) > wallTol*float64(base.WallMS) {
		return fmt.Errorf("wall time %d ms exceeds %gx baseline %d ms", fresh.WallMS, wallTol, base.WallMS)
	}
	if base.AllocsPerSnapshot > 0 && fresh.AllocsPerSnapshot > allocTol*base.AllocsPerSnapshot {
		return fmt.Errorf("allocs/snapshot %.1f exceeds %gx baseline %.1f",
			fresh.AllocsPerSnapshot, allocTol, base.AllocsPerSnapshot)
	}
	// Windowed replay gate: rollover cost is covered when both runs
	// carried a windowed pass of the same geometry.
	if base.WindowSec > 0 && fresh.WindowSec == base.WindowSec {
		if len(fresh.Windows) != len(base.Windows) {
			return fmt.Errorf("windowed pass produced %d windows, baseline %d", len(fresh.Windows), len(base.Windows))
		}
		if base.WindowedWallMS > 0 && float64(fresh.WindowedWallMS) > wallTol*float64(base.WindowedWallMS) {
			return fmt.Errorf("windowed wall time %d ms exceeds %gx baseline %d ms",
				fresh.WindowedWallMS, wallTol, base.WindowedWallMS)
		}
	}
	// Query-endpoint gate: reply latency must not blow past the same
	// slowdown factor the wall-time gates use (latency is machine-noisy;
	// the gate catches serialisation-path regressions, not jitter).
	if base.QueryBench != nil && fresh.QueryBench != nil && base.QueryBench.P99Ms > 0 &&
		fresh.QueryBench.P99Ms > wallTol*base.QueryBench.P99Ms {
		return fmt.Errorf("query p99 latency %.2f ms exceeds %gx baseline %.2f ms",
			fresh.QueryBench.P99Ms, wallTol, base.QueryBench.P99Ms)
	}
	// Serving-path gate: interest management must keep buying its
	// bandwidth reduction. An AOI avatar's bytes-per-push may not grow
	// past 3x the baseline, the full/AOI reduction factor may not collapse
	// below half the baseline's (a silently-unfiltered push path would
	// pass every latency check while serving whole-land maps), and no
	// bench client — all of them prompt drainers — may be dropped.
	if base.ServingBench != nil && fresh.ServingBench != nil {
		if fresh.ServingBench.ServerFaults > 0 {
			return fmt.Errorf("serving bench recorded %d server faults", fresh.ServingBench.ServerFaults)
		}
		if base.ServingBench.AOIBytesPerPush > 0 &&
			fresh.ServingBench.AOIBytesPerPush > 3*base.ServingBench.AOIBytesPerPush {
			return fmt.Errorf("AOI bytes/push %.0f exceeds 3x baseline %.0f",
				fresh.ServingBench.AOIBytesPerPush, base.ServingBench.AOIBytesPerPush)
		}
		if base.ServingBench.FullToAOIRatio > 1 &&
			fresh.ServingBench.FullToAOIRatio < base.ServingBench.FullToAOIRatio/2 {
			return fmt.Errorf("full/AOI bandwidth ratio %.1f collapsed from baseline %.1f",
				fresh.ServingBench.FullToAOIRatio, base.ServingBench.FullToAOIRatio)
		}
	}
	// Incremental-engine gate: the fraction of snapshots served
	// incrementally must not collapse (a silently-broken delta path would
	// fall back to scratch everywhere and pass every metric check), and
	// each churn-sweep preset's wall time must stay within the slowdown
	// tolerance — in particular the high-churn preset, where the fallback
	// heuristic is what keeps the engine no slower than a scratch build.
	if base.Incremental != nil && fresh.Incremental != nil &&
		base.Incremental.IncrementalFrac > 0.1 &&
		fresh.Incremental.IncrementalFrac < base.Incremental.IncrementalFrac/2 {
		return fmt.Errorf("incremental fraction %.3f collapsed from baseline %.3f",
			fresh.Incremental.IncrementalFrac, base.Incremental.IncrementalFrac)
	}
	// Parallel tick-engine gate: serial whole-estate tick throughput must
	// not collapse (same slowdown factor as the wall-time gates), and on
	// a machine with the cores to show it, stepping the city-scale estate
	// with 8 workers must keep buying at least a 3x throughput gain over
	// serial — the scaling floor the parallel tick engine exists for.
	// Few-core machines still run the bench and feed the baseline, but a
	// speedup they cannot physically reach is not demanded of them; the
	// paper estate's 3 regions cannot occupy 8 workers either, so the
	// scaling demand applies to grids of at least 8 regions.
	if len(base.TickBench) > 0 && len(fresh.TickBench) > 0 {
		baseTB := make(map[string]tickBench, len(base.TickBench))
		for _, tb := range base.TickBench {
			baseTB[tb.Estate] = tb
		}
		for _, tb := range fresh.TickBench {
			want, ok := baseTB[tb.Estate]
			if ok && want.Ticks == tb.Ticks {
				if bs, fs := want.run(1), tb.run(1); bs != nil && fs != nil && bs.TicksPerSec > 0 &&
					fs.TicksPerSec < bs.TicksPerSec/wallTol {
					return fmt.Errorf("%s serial tick throughput %.0f/s fell below 1/%gx baseline %.0f/s",
						tb.Estate, fs.TicksPerSec, wallTol, bs.TicksPerSec)
				}
			}
			if tb.Cores >= 8 && tb.Regions >= 8 {
				if r8 := tb.run(8); r8 != nil && r8.Speedup < 3 {
					return fmt.Errorf("%s tick throughput at 8 workers is %.2fx serial on a %d-core machine, want >= 3x",
						tb.Estate, r8.Speedup, tb.Cores)
				}
			}
		}
	}
	if len(base.ChurnSweep) > 0 && len(fresh.ChurnSweep) > 0 {
		baseChurn := make(map[string]churnRun, len(base.ChurnSweep))
		for _, cr := range base.ChurnSweep {
			baseChurn[cr.Level] = cr
		}
		for _, cr := range fresh.ChurnSweep {
			want, ok := baseChurn[cr.Level]
			if !ok {
				continue
			}
			if want.WallMS > 0 && float64(cr.WallMS) > wallTol*float64(want.WallMS) {
				return fmt.Errorf("churn preset %q wall time %d ms exceeds %gx baseline %d ms",
					cr.Level, cr.WallMS, wallTol, want.WallMS)
			}
		}
	}
	return nil
}

// churnSweep measures each mobility preset: simulate+analyse with the
// incremental engine on, recording wall time and the incremental-hit
// profile.
func churnSweep(ctx context.Context, seed uint64, duration int64) ([]churnRun, error) {
	var out []churnRun
	for _, level := range world.ChurnLevels {
		scn, err := world.ChurnScenario(level, seed)
		if err != nil {
			return nil, err
		}
		scn.Duration = duration
		start := time.Now()
		run, err := experiment.RunLand(ctx, scn, core.PaperTau)
		if err != nil {
			return nil, fmt.Errorf("churn preset %q: %w", level, err)
		}
		out = append(out, churnRun{
			Level:       level,
			WallMS:      time.Since(start).Milliseconds(),
			Incremental: incrementalOf(run.Workspace),
		})
	}
	return out, nil
}

// queryBenchRun serves a short paper estate with the analytics endpoint
// enabled, runs it to completion at high warp, and measures query
// round-trips against the sealed service.
func queryBenchRun(ctx context.Context, seed uint64) (*queryBench, error) {
	est := slmob.PaperEstate(seed)
	est.Duration = 1200
	svc, err := slmob.ServeEstate(ctx, est,
		slmob.WithWarp(4000), slmob.WithTickEvery(time.Millisecond),
		slmob.WithWindow(600), slmob.WithQueryAddr("127.0.0.1:0"))
	if err != nil {
		return nil, err
	}
	defer svc.Stop()
	select {
	case <-svc.Done():
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	qc, err := slp.DialQuery(svc.QueryAddr(), 10*time.Second)
	if err != nil {
		return nil, err
	}
	defer qc.Close()
	res, err := qc.Cumulative(-1)
	if err != nil {
		return nil, err
	}
	const queries = 600
	lats := make([]float64, 0, queries)
	start := time.Now()
	for n := 0; n < queries; n++ {
		t0 := time.Now()
		switch n % 3 {
		case 0:
			_, err = qc.Cumulative(-1)
		case 1:
			_, err = qc.Stats()
		case 2:
			_, err = qc.WindowAt(-1, -1)
		}
		if err != nil {
			return nil, err
		}
		lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
	}
	elapsed := time.Since(start).Seconds()
	sort.Float64s(lats)
	return &queryBench{
		Queries:       queries,
		P50Ms:         lats[len(lats)/2],
		P99Ms:         lats[len(lats)*99/100],
		RepliesPerSec: float64(queries) / elapsed,
		BlobBytes:     len(res.Blob),
	}, nil
}

// servingBenchRun floods a short held paper estate with a mixed client
// population — observers on full-resolution pushes, whole-land coarse
// avatars, and AOI-delta avatars — and distils the load report into the
// per-kind bandwidth block.
func servingBenchRun(ctx context.Context, seed uint64) (*servingBench, error) {
	rep, err := load.Run(ctx, load.Config{
		Preset:      "paper",
		Seed:        seed,
		SimDuration: 1200,
		Warp:        600,
		Window:      600,
		Observers:   6,
		Avatars:     24,
		AOIAvatars:  24,
		AOIRadius:   48,
		AOIDelta:    true,
		Tau:         core.PaperTau,
		RunFor:      20 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	sb := &servingBench{
		Observers:    rep.Observers,
		Avatars:      rep.Avatars,
		AOIAvatars:   rep.AOIAvatars,
		Pushes:       rep.Pushes,
		ServerFaults: rep.ServerFaults,
	}
	if ms := rep.Mix[load.KindAvatar]; ms != nil {
		sb.AvatarBytesPerPush = ms.BytesPerPush
	}
	if ms := rep.Mix[load.KindAOIAvatar]; ms != nil {
		sb.AOIBytesPerPush = ms.BytesPerPush
	}
	if sb.AOIBytesPerPush > 0 {
		sb.FullToAOIRatio = sb.AvatarBytesPerPush / sb.AOIBytesPerPush
	}
	return sb, nil
}

// windowedPass replays the land's trace through the windowed analyzer
// with a timing hook, charging each window — rollover included — its
// wall-clock share.
func windowedPass(run *experiment.LandRun, window int64) (int64, []windowTiming, error) {
	wa, err := core.NewWindowedAnalyzer(run.Trace.Land, run.Trace.Tau, window,
		core.Config{LandSize: run.Scenario.Land.Size})
	if err != nil {
		return 0, nil, err
	}
	var timings []windowTiming
	start := time.Now()
	last := start
	wa.OnWindow(func(k int64, an *core.Analysis) {
		now := time.Now()
		timings = append(timings, windowTiming{
			Index:     k,
			Snapshots: an.Summary.Snapshots,
			WallMS:    float64(now.Sub(last).Microseconds()) / 1000,
		})
		last = now
	})
	if _, err := wa.Consume(context.Background(), run.Trace.Source()); err != nil {
		return 0, nil, err
	}
	return time.Since(start).Milliseconds(), timings, nil
}

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "simulation seed")
		duration   = flag.Int64("duration", world.DayDuration, "measurement length in sim seconds")
		out        = flag.String("out", "", "write figure CSVs to this directory")
		ascii      = flag.Bool("ascii", true, "render ASCII figures")
		land       = flag.String("land", "", "benchmark a single land (apfel, dance, isle) instead of all three")
		jsonOut    = flag.String("json", "", "write wall time and headline metrics as JSON to this file")
		baseline   = flag.String("baseline", "", "compare the fresh metrics against this committed baseline JSON")
		tol        = flag.Float64("tolerance", 0.5, "relative metric tolerance for -baseline")
		wallTol    = flag.Float64("wall-tolerance", 10, "wall-time slowdown factor tolerated by -baseline")
		allocTol   = flag.Float64("alloc-tolerance", 3, "allocs/snapshot growth factor tolerated by -baseline")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
		window     = flag.Int64("window", 0, "additionally replay the first land through the windowed analyzer with windows of this many seconds, timing each window")
		churn      = flag.Bool("churn-sweep", false, "additionally run the low/medium/high mobility presets, recording wall time and incremental-hit statistics per preset")
		queryB     = flag.Bool("query-bench", true, "additionally serve a short paper estate and measure live query-endpoint latency")
		servingB   = flag.Bool("serving-bench", true, "additionally load a short paper estate with a mixed client population and measure per-kind push bandwidth")
		tickB      = flag.Bool("tick-bench", true, "additionally step the paper and city estates at several worker counts and measure whole-estate tick throughput")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The CPU profile covers exactly the measured simulate+analyse span
	// and is flushed as soon as it ends: a later log.Fatal (baseline
	// regression, export error) exits without running defers, and the
	// regressing run is precisely the one worth profiling.
	stopCPUProfile := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	var runs []*experiment.LandRun
	if *land != "" {
		scn, err := world.PaperLand(*land, *seed)
		if err != nil {
			log.Fatal(err)
		}
		scn.Duration = *duration
		fmt.Printf("slbench: simulating %q for %d sim seconds (seed %d)...\n",
			scn.Land.Name, *duration, *seed)
		run, err := experiment.RunLand(ctx, scn, core.PaperTau)
		if err != nil {
			log.Fatal(err)
		}
		runs = []*experiment.LandRun{run}
	} else {
		fmt.Printf("slbench: simulating the three target lands for %d sim seconds (seed %d)...\n",
			*duration, *seed)
		var err error
		runs, err = experiment.RunLands(ctx, *seed, *duration, core.PaperTau)
		if err != nil {
			log.Fatal(err)
		}
	}
	wall := time.Since(start)
	stopCPUProfile()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	snapshots := float64(len(runs)) * float64(*duration) / float64(core.PaperTau)
	allocsPerSnap := 0.0
	if snapshots > 0 {
		allocsPerSnap = float64(memAfter.Mallocs-memBefore.Mallocs) / snapshots
	}
	fmt.Printf("slbench: simulation + analysis took %s (%.0f allocs/snapshot)\n\n",
		wall.Round(time.Millisecond), allocsPerSnap)

	for _, run := range runs {
		fmt.Println(run.Analysis.Summary.String())
	}
	fmt.Println()

	bo := benchOutput{
		Seed:              *seed,
		DurationSec:       *duration,
		Tau:               core.PaperTau,
		WallMS:            wall.Milliseconds(),
		AllocsPerSnapshot: allocsPerSnap,
	}
	var wsSum graph.WorkspaceStats
	for _, run := range runs {
		bo.Lands = append(bo.Lands, metricsOf(run.Analysis))
		wsSum.Add(run.Workspace)
	}
	bo.Incremental = incrementalOf(wsSum)
	if inc := bo.Incremental; inc != nil {
		fmt.Printf("slbench: incremental graph builds: %.1f%% of %d (moved %.1f, ±%.1f avatars and %.1f edges per snapshot; diameter reuse %.1f%%, clustering reuse %.1f%%)\n\n",
			inc.IncrementalFrac*100, inc.Snapshots, inc.MovedPerSnapshot,
			inc.ArrivedPerSnapshot+inc.DepartedPerSnapshot, inc.EdgesChangedPerSnapshot,
			inc.DiamReuseFrac*100, inc.CCReuseFrac*100)
	}
	if *churn {
		sweep, err := churnSweep(ctx, *seed, *duration)
		if err != nil {
			log.Fatal(err)
		}
		bo.ChurnSweep = sweep
		for _, cr := range sweep {
			frac := 0.0
			if cr.Incremental != nil {
				frac = cr.Incremental.IncrementalFrac
			}
			fmt.Printf("slbench: churn %-6s %6d ms wall, %.1f%% incremental\n", cr.Level, cr.WallMS, frac*100)
		}
		fmt.Println()
	}
	if *window > 0 {
		wms, timings, err := windowedPass(runs[0], *window)
		if err != nil {
			log.Fatal(err)
		}
		bo.WindowSec = *window
		bo.WindowedWallMS = wms
		bo.Windows = timings
		fmt.Printf("slbench: windowed replay (%d s windows) took %d ms over %d windows\n\n",
			*window, wms, len(timings))
	}
	if *queryB {
		qb, err := queryBenchRun(ctx, *seed)
		if err != nil {
			log.Fatal(err)
		}
		bo.QueryBench = qb
		fmt.Printf("slbench: query endpoint: %d queries, p50 %.2f ms, p99 %.2f ms, %.0f replies/s, %d-byte sealed blob\n\n",
			qb.Queries, qb.P50Ms, qb.P99Ms, qb.RepliesPerSec, qb.BlobBytes)
	}
	if *servingB {
		sb, err := servingBenchRun(ctx, *seed)
		if err != nil {
			log.Fatal(err)
		}
		bo.ServingBench = sb
		fmt.Printf("slbench: serving path: %d pushes, avatar %.0f B/push, AOI %.0f B/push (%.1fx reduction), %d faults\n\n",
			sb.Pushes, sb.AvatarBytesPerPush, sb.AOIBytesPerPush, sb.FullToAOIRatio, sb.ServerFaults)
	}
	if *tickB {
		for _, tc := range []struct {
			cfg   world.EstateConfig
			ticks int64
		}{
			{world.PaperEstate(*seed), 20000},
			{world.CityEstate(*seed), 4000},
		} {
			tb, err := tickBenchRun(ctx, tc.cfg, tc.ticks)
			if err != nil {
				log.Fatal(err)
			}
			bo.TickBench = append(bo.TickBench, tb)
			fmt.Printf("slbench: tick engine %q (%d regions, %d ticks):", tb.Estate, tb.Regions, tb.Ticks)
			for _, run := range tb.Runs {
				fmt.Printf(" x%d %.0f ticks/s (%.2fx)", run.Workers, run.TicksPerSec, run.Speedup)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(bo, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slbench: wrote metrics JSON to %s\n", *jsonOut)
	}
	if *baseline != "" {
		if err := compareBaseline(bo, *baseline, *tol, *wallTol, *allocTol); err != nil {
			log.Fatalf("slbench: baseline regression: %v", err)
		}
		fmt.Printf("slbench: metrics within tolerance of baseline %s\n", *baseline)
	}

	if *land != "" {
		// The paper report and figures need all three lands.
		return
	}

	rep, err := experiment.BuildReport(runs)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fails := rep.Failures()
	fmt.Printf("\nslbench: %d/%d rows within tolerance\n\n", len(rep.Rows)-len(fails), len(rep.Rows))

	figs, err := experiment.Figures(runs)
	if err != nil {
		log.Fatal(err)
	}
	if *ascii {
		for _, fig := range figs {
			if err := fig.RenderASCII(os.Stdout, 72, 14); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, fig := range figs {
			f, err := os.Create(filepath.Join(*out, fig.ID+".csv"))
			if err != nil {
				log.Fatal(err)
			}
			if err := fig.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
		fmt.Printf("slbench: wrote %d figure CSVs to %s\n", len(figs), *out)
	}
}
