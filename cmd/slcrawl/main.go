// Command slcrawl is the paper's measurement crawler: it logs into a
// region server as a regular avatar, samples the coarse map every τ
// seconds, mimics a normal user to avoid perturbing the measurement, and
// writes the resulting mobility trace to disk.
//
// Usage (against a running cmd/slsim):
//
//	slcrawl -addr 127.0.0.1:7600 -tau 10 -duration 86400 -out dance.sltr
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"slmob/internal/crawler"
	"slmob/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7600", "region server address")
		name     = flag.String("name", "crawler-01", "avatar login name")
		password = flag.String("password", "", "login password")
		tau      = flag.Int64("tau", 10, "snapshot period in sim seconds")
		duration = flag.Int64("duration", 86400, "crawl length in sim seconds")
		mimic    = flag.Bool("mimic", true, "mimic a normal user (move + chat)")
		seed     = flag.Uint64("seed", 1, "mimicry randomness seed")
		out      = flag.String("out", "trace.sltr", "output file (.csv for CSV, else binary)")
	)
	flag.Parse()

	cr, err := crawler.New(crawler.Config{
		Addr: *addr, Name: *name, Password: *password,
		Tau: *tau, Duration: *duration, Mimic: *mimic, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slcrawl: logged in as avatar %d, mimic=%v\n", cr.SelfID(), *mimic)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Stream map pushes into the trace; ^C stops mid-crawl and keeps the
	// partial data.
	tr, err := trace.Collect(ctx, cr.Source(), "", 0)
	cr.Close()
	if err != nil && ctx.Err() == nil {
		log.Printf("slcrawl: crawl ended early: %v", err)
	}
	if tr == nil || len(tr.Snapshots) == 0 {
		log.Fatal("slcrawl: no data collected")
	}
	if err := trace.WriteFile(tr, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slcrawl: %s\n", tr.Summarize())
	fmt.Printf("slcrawl: wrote %d snapshots to %s\n", len(tr.Snapshots), *out)
}
