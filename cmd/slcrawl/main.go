// Command slcrawl is the paper's measurement crawler: it logs into a
// region server as a regular avatar, samples the coarse map every τ
// seconds, mimics a normal user to avoid perturbing the measurement, and
// writes the resulting mobility trace to disk.
//
// With -directory it instead crawls a whole served estate (cmd/slserve):
// it discovers the grid through the directory endpoint, logs one
// clock-aligned observer monitor into every region server, releases a
// held estate clock, and writes one per-region trace file — ready for
// the sharded analysis of slanalyze's multi-file mode.
//
// Usage:
//
//	slcrawl -addr 127.0.0.1:7600 -tau 10 -duration 86400 -out dance.sltr
//	slcrawl -directory 127.0.0.1:7700 -tau 10 -trace-dir traces/
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"slmob/internal/crawler"
	"slmob/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7600", "region server address")
		name      = flag.String("name", "crawler-01", "avatar login name")
		password  = flag.String("password", "", "login password")
		tau       = flag.Int64("tau", 10, "snapshot period in sim seconds")
		duration  = flag.Int64("duration", 86400, "crawl length in sim seconds")
		mimic     = flag.Bool("mimic", true, "mimic a normal user (move + chat)")
		seed      = flag.Uint64("seed", 1, "mimicry randomness seed")
		out       = flag.String("out", "trace.sltr", "output file (.csv for CSV, else binary)")
		directory = flag.String("directory", "", "estate mode: crawl the estate behind this directory endpoint")
		traceDir  = flag.String("trace-dir", "traces", "estate mode: write per-region trace files here")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *directory != "" {
		// -duration overrides the estate's scheduled duration only when
		// given explicitly; the default otherwise adopts the directory's.
		estateDuration := int64(0)
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "duration" {
				estateDuration = *duration
			}
		})
		crawlEstate(ctx, *directory, *name, *password, *tau, estateDuration, *traceDir)
		return
	}

	cr, err := crawler.New(crawler.Config{
		Addr: *addr, Name: *name, Password: *password,
		Tau: *tau, Duration: *duration, Mimic: *mimic, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slcrawl: logged in as avatar %d, mimic=%v\n", cr.SelfID(), *mimic)

	// Stream map pushes into the trace; ^C stops mid-crawl and keeps the
	// partial data.
	tr, err := trace.Collect(ctx, cr.Source(), "", 0)
	cr.Close()
	if err != nil && ctx.Err() == nil {
		log.Printf("slcrawl: crawl ended early: %v", err)
	}
	if tr == nil || len(tr.Snapshots) == 0 {
		log.Fatal("slcrawl: no data collected")
	}
	if err := trace.WriteFile(tr, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slcrawl: %s\n", tr.Summarize())
	fmt.Printf("slcrawl: wrote %d snapshots to %s\n", len(tr.Snapshots), *out)
}

// crawlEstate monitors every region of a served estate and writes one
// trace file per region. A zero duration adopts the estate's own.
func crawlEstate(ctx context.Context, directory, name, password string, tau, duration int64, dir string) {
	ec, err := crawler.NewEstate(crawler.EstateConfig{
		Directory: directory, Name: name, Password: password, Tau: tau, Duration: duration,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ec.Close()
	grid := ec.Directory()
	if duration == 0 {
		duration = grid.Duration
	}
	fmt.Printf("slcrawl: monitoring estate %q (%dx%d regions) at tau=%ds for %ds\n",
		grid.Estate, grid.Rows, grid.Cols, tau, duration)

	trs, err := trace.CollectEstate(ctx, ec.Source())
	if err != nil && ctx.Err() == nil {
		log.Printf("slcrawl: estate crawl ended early: %v", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	wrote := 0
	for i, tr := range trs {
		if len(tr.Snapshots) == 0 {
			continue
		}
		slug := strings.Map(func(r rune) rune {
			switch r {
			case ' ', '(', ')', ',':
				return '_'
			}
			return r
		}, strings.ToLower(tr.Land))
		path := filepath.Join(dir, fmt.Sprintf("region%02d_%s.sltr", i, slug))
		if err := trace.WriteFile(tr, path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slcrawl: %s -> %s (%d snapshots, %d unique)\n",
			tr.Land, path, len(tr.Snapshots), tr.UniqueUsers())
		wrote++
	}
	if wrote == 0 {
		log.Fatal("slcrawl: no data collected")
	}
}
