// Command sldtn replays a mobility trace under the four delay-tolerant
// forwarding schemes (epidemic, spray-and-wait, two-hop relay, direct
// delivery) and reports delivery ratio, delay, and replication cost —
// the trace-driven DTN evaluation the paper proposes as the main
// application of its data.
//
// Usage:
//
//	sldtn -in dance.sltr -range 10 -messages 200
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"slmob/internal/dtn"
	"slmob/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input trace file")
		r        = flag.Float64("range", 10, "radio range in metres")
		messages = flag.Int("messages", 200, "messages to generate")
		seed     = flag.Uint64("seed", 1, "message sampling seed")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	tr, err := trace.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sldtn: %s\n", tr.Summarize())
	results, err := dtn.CompareProtocols(tr, *r, *messages, *seed)
	if err != nil {
		log.Fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PROTOCOL\tDELIVERED\tRATIO\tMEDIAN DELAY (s)\tCOPIES/MSG")
	for _, res := range results {
		fmt.Fprintf(tw, "%s\t%d/%d\t%.3f\t%.0f\t%.2f\n",
			res.Protocol, res.Delivered, res.Generated,
			res.DeliveryRatio(), res.MedianDelay(), res.CopiesPerMessage())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
