// Command slanalyze computes every metric of the paper from a trace file:
// the §3 population summary, contact statistics (CT/ICT/FT) at both
// communication ranges, line-of-sight network properties, zone occupation,
// trip metrics, and the §4 tail-model comparison. With -figdir it also
// exports per-panel CSV curves ready for plotting.
//
// The file is streamed through the incremental analyzer: snapshots are
// decoded and folded into the running metrics one at a time, so a
// multi-gigabyte archive analyses in constant memory.
//
// With multiple input files the tool switches to estate mode: each file
// is one region of a sharded estate (as written by slsim -estate), the
// regions are analysed on parallel workers, and the estate-global
// summary — whose contacts stay correct across region borders and
// handoffs — is printed alongside each region's.
//
// With -window N the trace is additionally sliced into N-second
// absolute-aligned windows (N=3600: hourly, clock-aligned): the
// per-window series is emitted as JSON and the whole-trace report below
// it is computed by merging the windows — bit-identical to the
// single-pass analysis, by the accumulator merge invariant.
//
// With -checkpoint the analysis state is snapshotted to a file every
// -checkpoint-every simulated seconds (atomically); a killed run picks
// up from the file with -resume and finishes with the same result as an
// uninterrupted one, skipping the already-analysed prefix of the trace.
//
// With -query ADDR the tool becomes a client of a live estate's
// analytics query endpoint (slserve -query, slmob.WithQueryAddr): it
// fetches the cumulative analysis — or one sealed window with
// -query-window — while the measurement still runs, prints the same
// report, and notes the blob digest an offline replay of the identical
// trace would reproduce. -query-region selects a region-local view,
// -query-stats the service counters, and -follow polls until the run
// seals.
//
// Usage:
//
//	slanalyze -in dance.sltr -figdir figures/
//	slanalyze -in dance.sltr -window 3600 > diurnal.json
//	slanalyze -in big.sltr -checkpoint big.ckpt   # kill it mid-way...
//	slanalyze -in big.sltr -resume big.ckpt       # ...and finish the job
//	slanalyze -workers 4 region0.sltr region1.sltr region2.sltr
//	slanalyze -query 127.0.0.1:7800               # live cumulative analysis
//	slanalyze -query 127.0.0.1:7800 -follow 2s    # poll until sealed
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"slmob"
	"slmob/internal/core"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

func main() {
	var (
		in        = flag.String("in", "", "input trace file (.csv or binary)")
		figdir    = flag.String("figdir", "", "write per-metric CSV curves to this directory")
		zeroOK    = flag.Bool("repair-seated", true, "treat {0,0,0} positions as seated (the SL quirk)")
		estate    = flag.String("estate", "", "label for the estate-global results in multi-file mode")
		workers   = flag.Int("workers", 0, "regions analysed concurrently in multi-file mode (0: GOMAXPROCS)")
		window    = flag.Int64("window", 0, "emit windowed time-series analytics over windows of this many seconds, as JSON")
		windowOut = flag.String("window-out", "", "write the -window JSON series to this file instead of stdout")
		ckpt      = flag.String("checkpoint", "", "write a crash-safe checkpoint to this file while analysing")
		ckptEvery = flag.Int64("checkpoint-every", 3600, "checkpoint interval in simulated seconds")
		resume    = flag.String("resume", "", "resume the analysis from a checkpoint file written by -checkpoint")
		query     = flag.String("query", "", "fetch live analytics from a served estate's query endpoint instead of reading a trace")
		qRegion   = flag.Int("query-region", -1, "-query region index (-1: the estate-global analysis)")
		qWindow   = flag.Int64("query-window", -1, "-query a sealed window by index instead of the cumulative analysis")
		qStats    = flag.Bool("query-stats", false, "-query the service counters too")
		follow    = flag.Duration("follow", 0, "with -query, poll at this interval until the run seals")
	)
	flag.Parse()
	paths := flag.Args()
	if *in != "" {
		paths = append([]string{*in}, paths...)
	}
	if *query != "" {
		if len(paths) > 0 {
			log.Fatal("slanalyze: -query takes no trace files")
		}
		queryEndpoint(*query, *qRegion, *qWindow, *qStats, *follow)
		return
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if len(paths) > 1 {
		if *figdir != "" {
			log.Printf("slanalyze: -figdir applies to single-file mode only, ignoring")
		}
		if *ckpt != "" || *resume != "" {
			log.Fatal("slanalyze: -checkpoint/-resume apply to single-file mode only")
		}
		if *windowOut != "" {
			log.Printf("slanalyze: -window-out applies to single-file mode only, ignoring (estate windows print as they complete)")
		}
		analyzeEstate(ctx, paths, *estate, *workers, *zeroOK, *window)
		return
	}

	fs, err := trace.OpenStream(paths[0])
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()
	info := fs.Info()

	var opts []slmob.Option
	if *zeroOK {
		opts = append(opts, slmob.WithSeatedRepair())
	}
	if *ckpt != "" {
		opts = append(opts, slmob.WithCheckpointEvery(*ckpt, *ckptEvery))
	}
	if *resume != "" {
		opts = append(opts, slmob.WithResumeFrom(*resume))
	}

	var an *slmob.Analysis
	if *window > 0 {
		ws, err := slmob.AnalyzeWindows(ctx, fs, append(opts, slmob.WithWindow(*window))...)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeWindowJSON(ws, *windowOut); err != nil {
			log.Fatal(err)
		}
		if *windowOut == "" {
			// The series went to stdout: keep it valid JSON (pipeable to
			// jq or a plotter) and skip the text report.
			if *figdir != "" {
				log.Printf("slanalyze: -figdir needs -window-out when -window prints to stdout, ignoring")
			}
			return
		}
		// The whole-trace report below is the merged series — identical
		// to the single-pass analysis by the merge invariant.
		if an, err = ws.Merge(); err != nil {
			log.Fatal(err)
		}
	} else if an, err = slmob.AnalyzeStream(ctx, fs, opts...); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %s\n", an.Summary)
	med := func(xs []float64) float64 { return stats.Summarize(xs).Median }
	for _, r := range []float64{core.BluetoothRange, core.WiFiRange} {
		cs := an.Contacts[r]
		nm := an.Nets[r]
		fmt.Printf("-- r = %gm\n", r)
		fmt.Printf("   contact time:       %s\n", cs.CT.Summary())
		fmt.Printf("   inter-contact time: %s\n", cs.ICT.Summary())
		fmt.Printf("   first contact time: %s (never contacted: %d, censored contacts: %d)\n",
			cs.FT.Summary(), cs.NeverContacted, cs.Censored)
		fmt.Printf("   degree: median %.0f, P(deg=0) %.3f; diameter median %.0f (max %.0f); clustering median %.3f\n",
			nm.Degrees.Median(), nm.DegreeZeroFraction(), nm.Diameters.Median(), nm.MaxDiameter(), med(nm.Clusterings))
		for metric, dist := range map[string]*stats.Weighted{"CT": cs.CT, "ICT": cs.ICT} {
			if dist.N() < 50 {
				continue
			}
			cmp, err := stats.CompareTailModels(dist.Values(), float64(info.Tau))
			if err != nil {
				continue
			}
			best := cmp.Best()
			fmt.Printf("   %s tail: best=%s (alpha=%.2f cutoff=%.0f) AIC exp/pareto/cutoff = %.0f/%.0f/%.0f\n",
				metric, best.Model, cmp.Cutoff.Alpha, cmp.Cutoff.Cutoff,
				cmp.Exponential.AIC(), cmp.Pareto.AIC(), cmp.Cutoff.AIC())
		}
	}
	fmt.Printf("-- spatial\n")
	fmt.Printf("   zone occupation (L=20m): %.1f%% cells empty, max %v users/cell\n",
		100*float64(an.Zones.CountOf(0))/float64(an.Zones.N()), an.Zones.Max())
	fmt.Printf("   travel length:         %s\n", stats.Summarize(an.Trips.TravelLength))
	fmt.Printf("   effective travel time: %s\n", stats.Summarize(an.Trips.EffectiveTravelTime))
	fmt.Printf("   travel (login) time:   %s\n", stats.Summarize(an.Trips.TravelTime))

	if *figdir != "" {
		if err := os.MkdirAll(*figdir, 0o755); err != nil {
			log.Fatal(err)
		}
		panels := map[string]struct {
			dist   *stats.Weighted
			sample []float64
			ccdf   bool
		}{
			"ct_r10":         {dist: an.Contacts[10].CT, ccdf: true},
			"ict_r10":        {dist: an.Contacts[10].ICT, ccdf: true},
			"ft_r10":         {dist: an.Contacts[10].FT, ccdf: true},
			"ct_r80":         {dist: an.Contacts[80].CT, ccdf: true},
			"ict_r80":        {dist: an.Contacts[80].ICT, ccdf: true},
			"ft_r80":         {dist: an.Contacts[80].FT, ccdf: true},
			"degree_r10":     {dist: an.Nets[10].Degrees, ccdf: true},
			"diameter_r10":   {dist: an.Nets[10].Diameters},
			"clustering_r10": {sample: an.Nets[10].Clusterings},
			"degree_r80":     {dist: an.Nets[80].Degrees, ccdf: true},
			"diameter_r80":   {dist: an.Nets[80].Diameters},
			"clustering_r80": {sample: an.Nets[80].Clusterings},
			"zones":          {dist: an.Zones},
			"travel_length":  {sample: an.Trips.TravelLength},
			"effective_time": {sample: an.Trips.EffectiveTravelTime},
			"travel_time":    {sample: an.Trips.TravelTime},
		}
		for name, p := range panels {
			fig := &core.Figure{ID: name, Title: name, XLabel: "x", YLabel: "F"}
			switch {
			case p.dist != nil && p.ccdf:
				fig.Series = []core.Series{core.WeightedCCDFSeries(info.Land, p.dist, false)}
			case p.dist != nil:
				fig.Series = []core.Series{core.WeightedCDFSeries(info.Land, p.dist)}
			case p.ccdf:
				fig.Series = []core.Series{core.CCDFSeries(info.Land, p.sample, false)}
			default:
				fig.Series = []core.Series{core.CDFSeries(info.Land, p.sample)}
			}
			f, err := os.Create(filepath.Join(*figdir, name+".csv"))
			if err != nil {
				log.Fatal(err)
			}
			if err := fig.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
		fmt.Printf("slanalyze: wrote %d CSV panels to %s\n", len(panels), *figdir)
	}
}

// windowJSON is one window of the -window series.
type windowJSON struct {
	Index          int64                      `json:"index"`
	StartSec       int64                      `json:"start_sec"`
	EndSec         int64                      `json:"end_sec"`
	Snapshots      int                        `json:"snapshots"`
	NewUsers       int                        `json:"new_users"`
	MeanConcurrent float64                    `json:"mean_concurrent"`
	MaxConcurrent  int                        `json:"max_concurrent"`
	Sessions       int                        `json:"sessions_closed"`
	Ranges         map[string]windowRangeJSON `json:"ranges"`
}

// windowRangeJSON is one communication range's slice of a window.
type windowRangeJSON struct {
	NewPairs     int     `json:"new_pairs"`
	Contacts     int     `json:"contacts"`
	CTMedianSec  float64 `json:"ct_median_sec"`
	ICTMedianSec float64 `json:"ict_median_sec"`
	DegreeMedian float64 `json:"degree_median"`
}

func windowRecord(k int64, an *slmob.Analysis) windowJSON {
	wj := windowJSON{
		Index:          k,
		StartSec:       an.Start,
		EndSec:         an.End,
		Snapshots:      an.Summary.Snapshots,
		NewUsers:       an.Summary.Unique,
		MeanConcurrent: an.Summary.MeanConcurrent,
		MaxConcurrent:  an.Summary.MaxConcurrent,
		Ranges:         make(map[string]windowRangeJSON, len(an.Contacts)),
	}
	if an.Trips != nil {
		wj.Sessions = len(an.Trips.TravelTime)
	}
	med := func(w *stats.Weighted) float64 {
		if w == nil || w.N() == 0 {
			return 0
		}
		return w.Median()
	}
	for r, cs := range an.Contacts {
		rec := windowRangeJSON{
			NewPairs:     cs.Pairs,
			Contacts:     cs.CT.N(),
			CTMedianSec:  med(cs.CT),
			ICTMedianSec: med(cs.ICT),
		}
		if nm := an.Nets[r]; nm != nil {
			rec.DegreeMedian = med(nm.Degrees)
		}
		wj.Ranges[fmt.Sprintf("%g", r)] = rec
	}
	return wj
}

// writeWindowJSON emits the series as a JSON array, to stdout or a file.
func writeWindowJSON(ws *slmob.WindowSeries, path string) error {
	records := make([]windowJSON, 0, len(ws.Windows))
	for i, w := range ws.Windows {
		records = append(records, windowRecord(ws.First+int64(i), w))
	}
	data, err := json.MarshalIndent(struct {
		Land      string       `json:"land"`
		WindowSec int64        `json:"window_sec"`
		Windows   []windowJSON `json:"windows"`
	}{ws.Land, ws.Window, records}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("slanalyze: wrote %d-window series to %s\n", len(records), path)
	return nil
}

// queryEndpoint is the -query mode: a client of a live estate's
// analytics service. It fetches the cumulative (or one sealed window's)
// analysis, prints the report with its blob digest, and with follow > 0
// keeps polling until the run seals.
func queryEndpoint(addr string, region int, window int64, showStats bool, follow time.Duration) {
	qc, err := slmob.DialQuery(addr)
	if err != nil {
		log.Fatalf("slanalyze: %v", err)
	}
	defer qc.Close()

	for {
		if showStats {
			st, err := qc.Stats()
			if err != nil {
				log.Fatalf("slanalyze: stats: %v", err)
			}
			fmt.Printf("== service: sim time %d, %d regions, windows [%d, +%d) of %ds, sealed=%v\n",
				st.SimTime, st.Regions, st.FirstWindow, st.Windows, st.WindowSec, st.Sealed)
			fmt.Printf("   readers %d, queries %d, dropped %d; workspace snapshots %d (%d incremental, %d rebuilds)\n",
				st.Readers, st.Queries, st.Dropped, st.WsSnapshots, st.WsIncremental, st.WsRebuilds)
		}
		var la *slmob.LiveAnalysis
		var err error
		if window >= 0 {
			la, err = qc.Window(region, window)
		} else {
			la, err = qc.Cumulative(region)
		}
		if err != nil {
			log.Fatalf("slanalyze: query: %v", err)
		}
		if la.Analysis == nil {
			fmt.Printf("slanalyze: nothing sealed yet (sim time %d)\n", la.SimTime)
		} else {
			printLiveAnalysis(la)
		}
		if follow <= 0 || la.Sealed {
			return
		}
		time.Sleep(follow)
	}
}

func printLiveAnalysis(la *slmob.LiveAnalysis) {
	target := "estate-global"
	if la.Region >= 0 {
		target = fmt.Sprintf("region %d", la.Region)
	}
	scope := "cumulative"
	if la.Window >= 0 {
		scope = fmt.Sprintf("window %d", la.Window)
	}
	state := "live"
	if la.Sealed {
		state = "sealed"
	}
	an := la.Analysis
	fmt.Printf("== %s %s (%s) at sim time %d — %d sealed windows from %d\n",
		target, scope, state, la.SimTime, la.Windows, la.FirstWindow)
	fmt.Printf("   digest %s\n", la.Digest)
	fmt.Printf("   %s\n", an.Summary)
	for _, r := range []float64{core.BluetoothRange, core.WiFiRange} {
		cs := an.Contacts[r]
		if cs == nil {
			continue
		}
		fmt.Printf("-- r = %gm\n", r)
		fmt.Printf("   contact time:       %s\n", cs.CT.Summary())
		fmt.Printf("   inter-contact time: %s\n", cs.ICT.Summary())
		fmt.Printf("   first contact time: %s (never contacted: %d, censored contacts: %d)\n",
			cs.FT.Summary(), cs.NeverContacted, cs.Censored)
		if nm := an.Nets[r]; nm != nil {
			fmt.Printf("   degree: median %.0f, P(deg=0) %.3f\n",
				nm.Degrees.Median(), nm.DegreeZeroFraction())
		}
	}
	if an.Zones != nil && an.Zones.N() > 0 {
		fmt.Printf("-- spatial\n")
		fmt.Printf("   zone occupation (L=20m): %.1f%% cells empty, max %v users/cell\n",
			100*float64(an.Zones.CountOf(0))/float64(an.Zones.N()), an.Zones.Max())
	}
	if an.Trips != nil {
		fmt.Printf("   travel length:         %s\n", stats.Summarize(an.Trips.TravelLength))
		fmt.Printf("   effective travel time: %s\n", stats.Summarize(an.Trips.EffectiveTravelTime))
	}
}

// analyzeEstate zips the region files into one estate stream and runs
// the sharded façade pipeline: per-region analyzers on parallel workers
// plus the estate-global pass. With window > 0 the per-window global
// summaries print as the stream completes them — the same live series a
// served estate exposes.
func analyzeEstate(ctx context.Context, paths []string, estate string, workers int, zeroOK bool, window int64) {
	es, err := slmob.OpenEstateTraceStream(paths...)
	if err != nil {
		log.Fatal(err)
	}
	defer es.Close()
	opts := []slmob.Option{slmob.WithRegionWorkers(workers)}
	if zeroOK {
		opts = append(opts, slmob.WithSeatedRepair())
	}
	if estate != "" {
		opts = append(opts, slmob.WithLand(estate))
	}
	if window > 0 {
		opts = append(opts,
			slmob.WithWindow(window),
			slmob.WithEstateWindowFunc(func(k int64, w *slmob.EstateAnalysis) {
				fmt.Printf("-- window %d [%d s, %d s): %s\n",
					k, k*window, (k+1)*window, w.Global.Summary)
			}))
	}
	res, err := slmob.AnalyzeEstateStream(ctx, es, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== estate %s (%d regions)\n", res.Estate, len(res.Regions))
	fmt.Printf("   global: %s\n", res.Global.Summary)
	for _, r := range []float64{core.BluetoothRange, core.WiFiRange} {
		cs := res.Global.Contacts[r]
		fmt.Printf("-- global r = %gm (contacts correct across borders and handoffs)\n", r)
		fmt.Printf("   contact time:       %s\n", cs.CT.Summary())
		fmt.Printf("   inter-contact time: %s\n", cs.ICT.Summary())
		fmt.Printf("   first contact time: %s (never contacted: %d, censored contacts: %d)\n",
			cs.FT.Summary(), cs.NeverContacted, cs.Censored)
	}
	fmt.Printf("-- per region\n")
	for _, ra := range res.Regions {
		fmt.Printf("   %s\n", ra.Summary)
	}
}
