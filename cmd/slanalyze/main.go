// Command slanalyze computes every metric of the paper from a trace file:
// the §3 population summary, contact statistics (CT/ICT/FT) at both
// communication ranges, line-of-sight network properties, zone occupation,
// trip metrics, and the §4 tail-model comparison. With -figdir it also
// exports per-panel CSV curves ready for plotting.
//
// The file is streamed through the incremental analyzer: snapshots are
// decoded and folded into the running metrics one at a time, so a
// multi-gigabyte archive analyses in constant memory.
//
// With multiple input files the tool switches to estate mode: each file
// is one region of a sharded estate (as written by slsim -estate), the
// regions are analysed on parallel workers, and the estate-global
// summary — whose contacts stay correct across region borders and
// handoffs — is printed alongside each region's.
//
// Usage:
//
//	slanalyze -in dance.sltr -figdir figures/
//	slanalyze -workers 4 region0.sltr region1.sltr region2.sltr
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"

	"slmob"
	"slmob/internal/core"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

func main() {
	var (
		in      = flag.String("in", "", "input trace file (.csv or binary)")
		figdir  = flag.String("figdir", "", "write per-metric CSV curves to this directory")
		zeroOK  = flag.Bool("repair-seated", true, "treat {0,0,0} positions as seated (the SL quirk)")
		estate  = flag.String("estate", "", "label for the estate-global results in multi-file mode")
		workers = flag.Int("workers", 0, "regions analysed concurrently in multi-file mode (0: GOMAXPROCS)")
	)
	flag.Parse()
	paths := flag.Args()
	if *in != "" {
		paths = append([]string{*in}, paths...)
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if len(paths) > 1 {
		if *figdir != "" {
			log.Printf("slanalyze: -figdir applies to single-file mode only, ignoring")
		}
		analyzeEstate(ctx, paths, *estate, *workers, *zeroOK)
		return
	}

	fs, err := trace.OpenStream(paths[0])
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()
	info := fs.Info()
	size, err := info.Size()
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{TreatZeroAsSeated: *zeroOK, LandSize: size}
	analyzer, err := core.NewAnalyzer(info.Land, info.Tau, cfg)
	if err != nil {
		log.Fatal(err)
	}
	an, err := analyzer.Consume(ctx, fs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %s\n", an.Summary)
	med := func(xs []float64) float64 { return stats.Summarize(xs).Median }
	for _, r := range []float64{core.BluetoothRange, core.WiFiRange} {
		cs := an.Contacts[r]
		nm := an.Nets[r]
		fmt.Printf("-- r = %gm\n", r)
		fmt.Printf("   contact time:       %s\n", stats.Summarize(cs.CT))
		fmt.Printf("   inter-contact time: %s\n", stats.Summarize(cs.ICT))
		fmt.Printf("   first contact time: %s (never contacted: %d, censored contacts: %d)\n",
			stats.Summarize(cs.FT), cs.NeverContacted, cs.Censored)
		fmt.Printf("   degree: median %.0f, P(deg=0) %.3f; diameter median %.0f (max %.0f); clustering median %.3f\n",
			med(nm.Degrees), nm.DegreeZeroFraction(), med(nm.Diameters), nm.MaxDiameter(), med(nm.Clusterings))
		for metric, sample := range map[string][]float64{"CT": cs.CT, "ICT": cs.ICT} {
			if len(sample) < 50 {
				continue
			}
			cmp, err := stats.CompareTailModels(sample, float64(info.Tau))
			if err != nil {
				continue
			}
			best := cmp.Best()
			fmt.Printf("   %s tail: best=%s (alpha=%.2f cutoff=%.0f) AIC exp/pareto/cutoff = %.0f/%.0f/%.0f\n",
				metric, best.Model, cmp.Cutoff.Alpha, cmp.Cutoff.Cutoff,
				cmp.Exponential.AIC(), cmp.Pareto.AIC(), cmp.Cutoff.AIC())
		}
	}
	fmt.Printf("-- spatial\n")
	empty := 0
	for _, z := range an.Zones {
		if z == 0 {
			empty++
		}
	}
	fmt.Printf("   zone occupation (L=20m): %.1f%% cells empty, max %v users/cell\n",
		100*float64(empty)/float64(len(an.Zones)), stats.Summarize(an.Zones).Max)
	fmt.Printf("   travel length:         %s\n", stats.Summarize(an.Trips.TravelLength))
	fmt.Printf("   effective travel time: %s\n", stats.Summarize(an.Trips.EffectiveTravelTime))
	fmt.Printf("   travel (login) time:   %s\n", stats.Summarize(an.Trips.TravelTime))

	if *figdir != "" {
		if err := os.MkdirAll(*figdir, 0o755); err != nil {
			log.Fatal(err)
		}
		panels := map[string]struct {
			sample []float64
			ccdf   bool
		}{
			"ct_r10":         {an.Contacts[10].CT, true},
			"ict_r10":        {an.Contacts[10].ICT, true},
			"ft_r10":         {an.Contacts[10].FT, true},
			"ct_r80":         {an.Contacts[80].CT, true},
			"ict_r80":        {an.Contacts[80].ICT, true},
			"ft_r80":         {an.Contacts[80].FT, true},
			"degree_r10":     {an.Nets[10].Degrees, true},
			"diameter_r10":   {an.Nets[10].Diameters, false},
			"clustering_r10": {an.Nets[10].Clusterings, false},
			"degree_r80":     {an.Nets[80].Degrees, true},
			"diameter_r80":   {an.Nets[80].Diameters, false},
			"clustering_r80": {an.Nets[80].Clusterings, false},
			"zones":          {an.Zones, false},
			"travel_length":  {an.Trips.TravelLength, false},
			"effective_time": {an.Trips.EffectiveTravelTime, false},
			"travel_time":    {an.Trips.TravelTime, false},
		}
		for name, p := range panels {
			fig := &core.Figure{ID: name, Title: name, XLabel: "x", YLabel: "F"}
			if p.ccdf {
				fig.Series = []core.Series{core.CCDFSeries(info.Land, p.sample, false)}
			} else {
				fig.Series = []core.Series{core.CDFSeries(info.Land, p.sample)}
			}
			f, err := os.Create(filepath.Join(*figdir, name+".csv"))
			if err != nil {
				log.Fatal(err)
			}
			if err := fig.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
		fmt.Printf("slanalyze: wrote %d CSV panels to %s\n", len(panels), *figdir)
	}
}

// analyzeEstate zips the region files into one estate stream and runs
// the sharded façade pipeline: per-region analyzers on parallel workers
// plus the estate-global pass.
func analyzeEstate(ctx context.Context, paths []string, estate string, workers int, zeroOK bool) {
	es, err := slmob.OpenEstateTraceStream(paths...)
	if err != nil {
		log.Fatal(err)
	}
	defer es.Close()
	opts := []slmob.Option{slmob.WithRegionWorkers(workers)}
	if zeroOK {
		opts = append(opts, slmob.WithSeatedRepair())
	}
	if estate != "" {
		opts = append(opts, slmob.WithLand(estate))
	}
	res, err := slmob.AnalyzeEstateStream(ctx, es, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== estate %s (%d regions)\n", res.Estate, len(res.Regions))
	fmt.Printf("   global: %s\n", res.Global.Summary)
	for _, r := range []float64{core.BluetoothRange, core.WiFiRange} {
		cs := res.Global.Contacts[r]
		fmt.Printf("-- global r = %gm (contacts correct across borders and handoffs)\n", r)
		fmt.Printf("   contact time:       %s\n", stats.Summarize(cs.CT))
		fmt.Printf("   inter-contact time: %s\n", stats.Summarize(cs.ICT))
		fmt.Printf("   first contact time: %s (never contacted: %d, censored contacts: %d)\n",
			stats.Summarize(cs.FT), cs.NeverContacted, cs.Censored)
	}
	fmt.Printf("-- per region\n")
	for _, ra := range res.Regions {
		fmt.Printf("   %s\n", ra.Summary)
	}
}
