// Command slanalyze computes every metric of the paper from a trace file:
// the §3 population summary, contact statistics (CT/ICT/FT) at both
// communication ranges, line-of-sight network properties, zone occupation,
// trip metrics, and the §4 tail-model comparison. With -figdir it also
// exports per-panel CSV curves ready for plotting.
//
// The file is streamed through the incremental analyzer: snapshots are
// decoded and folded into the running metrics one at a time, so a
// multi-gigabyte archive analyses in constant memory.
//
// With multiple input files the tool switches to estate mode: each file
// is one region of a sharded estate (as written by slsim -estate), the
// regions are analysed on parallel workers, and the estate-global
// summary — whose contacts stay correct across region borders and
// handoffs — is printed alongside each region's.
//
// Usage:
//
//	slanalyze -in dance.sltr -figdir figures/
//	slanalyze -workers 4 region0.sltr region1.sltr region2.sltr
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"

	"slmob"
	"slmob/internal/core"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

func main() {
	var (
		in      = flag.String("in", "", "input trace file (.csv or binary)")
		figdir  = flag.String("figdir", "", "write per-metric CSV curves to this directory")
		zeroOK  = flag.Bool("repair-seated", true, "treat {0,0,0} positions as seated (the SL quirk)")
		estate  = flag.String("estate", "", "label for the estate-global results in multi-file mode")
		workers = flag.Int("workers", 0, "regions analysed concurrently in multi-file mode (0: GOMAXPROCS)")
	)
	flag.Parse()
	paths := flag.Args()
	if *in != "" {
		paths = append([]string{*in}, paths...)
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if len(paths) > 1 {
		if *figdir != "" {
			log.Printf("slanalyze: -figdir applies to single-file mode only, ignoring")
		}
		analyzeEstate(ctx, paths, *estate, *workers, *zeroOK)
		return
	}

	fs, err := trace.OpenStream(paths[0])
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()
	info := fs.Info()
	size, err := info.Size()
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{TreatZeroAsSeated: *zeroOK, LandSize: size}
	analyzer, err := core.NewAnalyzer(info.Land, info.Tau, cfg)
	if err != nil {
		log.Fatal(err)
	}
	an, err := analyzer.Consume(ctx, fs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %s\n", an.Summary)
	med := func(xs []float64) float64 { return stats.Summarize(xs).Median }
	for _, r := range []float64{core.BluetoothRange, core.WiFiRange} {
		cs := an.Contacts[r]
		nm := an.Nets[r]
		fmt.Printf("-- r = %gm\n", r)
		fmt.Printf("   contact time:       %s\n", cs.CT.Summary())
		fmt.Printf("   inter-contact time: %s\n", cs.ICT.Summary())
		fmt.Printf("   first contact time: %s (never contacted: %d, censored contacts: %d)\n",
			cs.FT.Summary(), cs.NeverContacted, cs.Censored)
		fmt.Printf("   degree: median %.0f, P(deg=0) %.3f; diameter median %.0f (max %.0f); clustering median %.3f\n",
			nm.Degrees.Median(), nm.DegreeZeroFraction(), nm.Diameters.Median(), nm.MaxDiameter(), med(nm.Clusterings))
		for metric, dist := range map[string]*stats.Weighted{"CT": cs.CT, "ICT": cs.ICT} {
			if dist.N() < 50 {
				continue
			}
			cmp, err := stats.CompareTailModels(dist.Values(), float64(info.Tau))
			if err != nil {
				continue
			}
			best := cmp.Best()
			fmt.Printf("   %s tail: best=%s (alpha=%.2f cutoff=%.0f) AIC exp/pareto/cutoff = %.0f/%.0f/%.0f\n",
				metric, best.Model, cmp.Cutoff.Alpha, cmp.Cutoff.Cutoff,
				cmp.Exponential.AIC(), cmp.Pareto.AIC(), cmp.Cutoff.AIC())
		}
	}
	fmt.Printf("-- spatial\n")
	fmt.Printf("   zone occupation (L=20m): %.1f%% cells empty, max %v users/cell\n",
		100*float64(an.Zones.CountOf(0))/float64(an.Zones.N()), an.Zones.Max())
	fmt.Printf("   travel length:         %s\n", stats.Summarize(an.Trips.TravelLength))
	fmt.Printf("   effective travel time: %s\n", stats.Summarize(an.Trips.EffectiveTravelTime))
	fmt.Printf("   travel (login) time:   %s\n", stats.Summarize(an.Trips.TravelTime))

	if *figdir != "" {
		if err := os.MkdirAll(*figdir, 0o755); err != nil {
			log.Fatal(err)
		}
		panels := map[string]struct {
			dist   *stats.Weighted
			sample []float64
			ccdf   bool
		}{
			"ct_r10":         {dist: an.Contacts[10].CT, ccdf: true},
			"ict_r10":        {dist: an.Contacts[10].ICT, ccdf: true},
			"ft_r10":         {dist: an.Contacts[10].FT, ccdf: true},
			"ct_r80":         {dist: an.Contacts[80].CT, ccdf: true},
			"ict_r80":        {dist: an.Contacts[80].ICT, ccdf: true},
			"ft_r80":         {dist: an.Contacts[80].FT, ccdf: true},
			"degree_r10":     {dist: an.Nets[10].Degrees, ccdf: true},
			"diameter_r10":   {dist: an.Nets[10].Diameters},
			"clustering_r10": {sample: an.Nets[10].Clusterings},
			"degree_r80":     {dist: an.Nets[80].Degrees, ccdf: true},
			"diameter_r80":   {dist: an.Nets[80].Diameters},
			"clustering_r80": {sample: an.Nets[80].Clusterings},
			"zones":          {dist: an.Zones},
			"travel_length":  {sample: an.Trips.TravelLength},
			"effective_time": {sample: an.Trips.EffectiveTravelTime},
			"travel_time":    {sample: an.Trips.TravelTime},
		}
		for name, p := range panels {
			fig := &core.Figure{ID: name, Title: name, XLabel: "x", YLabel: "F"}
			switch {
			case p.dist != nil && p.ccdf:
				fig.Series = []core.Series{core.WeightedCCDFSeries(info.Land, p.dist, false)}
			case p.dist != nil:
				fig.Series = []core.Series{core.WeightedCDFSeries(info.Land, p.dist)}
			case p.ccdf:
				fig.Series = []core.Series{core.CCDFSeries(info.Land, p.sample, false)}
			default:
				fig.Series = []core.Series{core.CDFSeries(info.Land, p.sample)}
			}
			f, err := os.Create(filepath.Join(*figdir, name+".csv"))
			if err != nil {
				log.Fatal(err)
			}
			if err := fig.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
		fmt.Printf("slanalyze: wrote %d CSV panels to %s\n", len(panels), *figdir)
	}
}

// analyzeEstate zips the region files into one estate stream and runs
// the sharded façade pipeline: per-region analyzers on parallel workers
// plus the estate-global pass.
func analyzeEstate(ctx context.Context, paths []string, estate string, workers int, zeroOK bool) {
	es, err := slmob.OpenEstateTraceStream(paths...)
	if err != nil {
		log.Fatal(err)
	}
	defer es.Close()
	opts := []slmob.Option{slmob.WithRegionWorkers(workers)}
	if zeroOK {
		opts = append(opts, slmob.WithSeatedRepair())
	}
	if estate != "" {
		opts = append(opts, slmob.WithLand(estate))
	}
	res, err := slmob.AnalyzeEstateStream(ctx, es, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== estate %s (%d regions)\n", res.Estate, len(res.Regions))
	fmt.Printf("   global: %s\n", res.Global.Summary)
	for _, r := range []float64{core.BluetoothRange, core.WiFiRange} {
		cs := res.Global.Contacts[r]
		fmt.Printf("-- global r = %gm (contacts correct across borders and handoffs)\n", r)
		fmt.Printf("   contact time:       %s\n", cs.CT.Summary())
		fmt.Printf("   inter-contact time: %s\n", cs.ICT.Summary())
		fmt.Printf("   first contact time: %s (never contacted: %d, censored contacts: %d)\n",
			cs.FT.Summary(), cs.NeverContacted, cs.Censored)
	}
	fmt.Printf("-- per region\n")
	for _, ra := range res.Regions {
		fmt.Printf("   %s\n", ra.Summary)
	}
}
