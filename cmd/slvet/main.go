// Command slvet runs slmob's custom static-analysis suite over the
// whole module: the four analyzers that front-run the runtime gates
// (deterministic encode/merge order, zero-allocation hot paths, the
// accumulator field contract, and rng stream ownership).
//
// Usage:
//
//	slvet [-C dir] [-rules list] [package patterns...]
//
// Package patterns are accepted for command-line compatibility with go
// vet and ignored: the analyzers are whole-module by construction
// (call graphs and interface implementations cross package
// boundaries). Exit status is 0 when the module is clean, 1 when any
// diagnostic survives the //lint:allow filter, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"slmob/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		chdir = flag.String("C", ".", "module root to analyze (directory containing go.mod)")
		rules = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list  = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: slvet [-C dir] [-rules list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the slmob static-analysis suite over the whole module.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(os.Stderr, "slvet: unknown rule %q (try -list)\n", r)
			return 2
		}
		analyzers = kept
	}

	root, err := filepath.Abs(*chdir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slvet: %v\n", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slvet: %v\n", err)
		return 2
	}
	diags, err := lint.Run(mod.Fset, mod.Pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		p := d.Position(mod.Fset)
		name := p.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, p.Line, p.Column, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "slvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
