// Command slserve hosts a multi-region estate live over the slp wire
// protocol: one region server per grid cell on a shared warped clock,
// avatar handoffs crossing the network between region servers, and a
// directory endpoint for grid discovery — the networked counterpart of
// the offline `slsim -estate` trace writer.
//
// Monitors discover the grid through the directory address and crawl
// every region with clock-aligned observers (cmd/slcrawl -directory, or
// slmob.CrawlEstate). With -hold the shared clock waits for the first
// monitor (or an explicit clock-start) before tick one, so a
// measurement can observe the estate from its very first second.
//
// Usage:
//
//	slserve -estate paper -addr 127.0.0.1:7700 -warp 600 -seed 42
//	slserve -estate mainland -warp 1200 -hold
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"slmob/internal/server"
	"slmob/internal/world"
)

func main() {
	var (
		estate   = flag.String("estate", "paper", "estate preset: paper (1x3), mainland (4x4), or city (8x8)")
		addr     = flag.String("addr", "127.0.0.1:7700", "directory endpoint listen address")
		warp     = flag.Float64("warp", 600, "simulated seconds per wall second")
		workers  = flag.Int("sim-workers", 0, "step regions concurrently on this many goroutines per tick (0 or 1: serial; never changes results)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		duration = flag.Int64("duration", 0, "estate duration in sim seconds (0: preset default)")
		password = flag.String("password", "", "require this password for logins and peer links")
		hold     = flag.Bool("hold", false, "hold the shared clock at zero until a clock-start arrives")
		query    = flag.String("query", "", "serve a live analytics query endpoint on this address (empty: disabled)")
		window   = flag.Int64("window", 3600, "analysis window for the query endpoint, in sim seconds")
		aoi      = flag.Float64("aoi", 0, "default area-of-interest radius in metres for avatar subscriptions (0: whole land; observers exempt)")
	)
	flag.Parse()

	var cfg world.EstateConfig
	switch *estate {
	case "paper":
		cfg = world.PaperEstate(*seed)
	case "mainland":
		cfg = world.MainlandEstate(*seed)
	case "city":
		cfg = world.CityEstate(*seed)
	default:
		log.Fatalf("slserve: unknown estate %q (want paper, mainland, or city)", *estate)
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *workers > 0 {
		cfg.SimWorkers = *workers
	}

	srv, err := server.NewEstate(server.EstateConfig{
		Estate:    cfg,
		Addr:      *addr,
		Warp:      *warp,
		Password:  *password,
		AOIRadius: *aoi,
		Hold:      *hold,
		Analytics: server.AnalyticsConfig{
			Addr:   *query,
			Window: *window,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.CloseAnalytics()
	fmt.Printf("slserve: hosting estate %q (%dx%d regions) — directory on %s, warp %gx, duration %ds\n",
		cfg.Name, cfg.Rows, cfg.Cols, srv.DirectoryAddr(), *warp, cfg.EffectiveDuration())
	for i := 0; i < srv.NumRegions(); i++ {
		fmt.Printf("slserve:   region %d %q on %s\n", i, cfg.Regions[i].Land.Name, srv.RegionAddr(i))
	}
	if qa := srv.QueryAddr(); qa != "" {
		fmt.Printf("slserve:   analytics query endpoint on %s (window %ds)\n", qa, *window)
	}
	if *hold {
		fmt.Println("slserve: clock held — waiting for a monitor (or clock-start) to release it")
	}
	fmt.Printf("slserve: a full day takes %s of wall clock\n",
		time.Duration(86400/(*warp)*float64(time.Second)).Round(time.Second))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := srv.Run(ctx); err != nil && ctx.Err() == nil && !errors.Is(err, server.ErrDurationReached) {
		log.Printf("slserve: %v", err)
	}
	fmt.Printf("slserve: stopped at sim time %d — %d crossings, %d teleports, %d blocked handoffs\n",
		srv.SimTime(), srv.Crossings(), srv.Teleports(), srv.BlockedHandoffs())
	if ts := srv.TickStats(); ts.Intervals > 0 {
		fmt.Printf("slserve: ticks — %d workers, %d intervals / %d steps, max %s, %d over the %s budget\n",
			srv.StepWorkers(), ts.Intervals, ts.Steps, ts.Max.Round(time.Microsecond), ts.OverBudget, ts.Budget)
	}
}
