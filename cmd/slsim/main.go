// Command slsim runs the metaverse region server: it hosts one of the
// paper's three calibrated lands (or a mobility baseline) over the slp
// wire protocol so that crawlers (cmd/slcrawl) and sensor builders
// (cmd/slsensor) can connect, exactly as the paper's monitors connected
// to Second Life.
//
// Usage:
//
//	slsim -land dance -addr 127.0.0.1:7600 -warp 600 -seed 42
//
// With warp 600 a full 24-hour measurement completes in 144 wall seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"slmob/internal/server"
	"slmob/internal/world"
)

func main() {
	var (
		land     = flag.String("land", "dance", "target land: apfel, dance, isle, rwp, levy")
		addr     = flag.String("addr", "127.0.0.1:7600", "listen address")
		warp     = flag.Float64("warp", 600, "simulated seconds per wall second")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		duration = flag.Int64("duration", world.DayDuration, "scenario duration in sim seconds")
		password = flag.String("password", "", "require this login password")
	)
	flag.Parse()

	var scn world.Scenario
	switch *land {
	case "rwp":
		scn = world.BaselineScenario(world.RandomWaypoint, *seed)
	case "levy":
		scn = world.BaselineScenario(world.LevyWalk, *seed)
	default:
		var err error
		scn, err = world.PaperLand(*land, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}
	scn.Duration = *duration

	srv, err := server.New(server.Config{
		Addr:     *addr,
		Scenario: scn,
		Warp:     *warp,
		Password: *password,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slsim: hosting %q (%s land, cap %d) on %s, warp %gx, duration %ds\n",
		scn.Land.Name, scn.Land.Kind, scn.Land.EffectiveMaxAvatars(),
		srv.Addr(), *warp, scn.Duration)
	fmt.Printf("slsim: a full day takes %s of wall clock\n",
		time.Duration(float64(scn.Duration)/(*warp)*float64(time.Second)).Round(time.Second))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := srv.Run(ctx); err != nil && ctx.Err() == nil {
		log.Printf("slsim: %v", err)
	}
	fmt.Printf("slsim: stopped at sim time %d\n", srv.SimTime())
}
