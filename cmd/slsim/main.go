// Command slsim runs the metaverse region server: it hosts one of the
// paper's three calibrated lands (or a mobility baseline) over the slp
// wire protocol so that crawlers (cmd/slcrawl) and sensor builders
// (cmd/slsensor) can connect, exactly as the paper's monitors connected
// to Second Life.
//
// With -estate it instead simulates a multi-region estate grid offline
// and writes one τ-sampled trace file per region to -trace-dir, ready
// for the sharded analysis of slanalyze's multi-file mode.
//
// Usage:
//
//	slsim -land dance -addr 127.0.0.1:7600 -warp 600 -seed 42
//	slsim -estate paper -duration 7200 -trace-dir traces/
//
// With warp 600 a full 24-hour measurement completes in 144 wall seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"slmob/internal/server"
	"slmob/internal/trace"
	"slmob/internal/world"
)

func main() {
	var (
		land     = flag.String("land", "dance", "target land: apfel, dance, isle, rwp, levy")
		addr     = flag.String("addr", "127.0.0.1:7600", "listen address")
		warp     = flag.Float64("warp", 600, "simulated seconds per wall second")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		duration = flag.Int64("duration", world.DayDuration, "scenario duration in sim seconds")
		password = flag.String("password", "", "require this login password")
		estate   = flag.String("estate", "", "simulate an estate offline: paper (1x3) or mainland (4x4)")
		traceDir = flag.String("trace-dir", "traces", "estate mode: write per-region trace files here")
		tau      = flag.Int64("tau", 10, "estate mode: snapshot period in sim seconds")
	)
	flag.Parse()

	if *estate != "" {
		runEstate(*estate, *seed, *duration, *tau, *traceDir)
		return
	}

	var scn world.Scenario
	switch *land {
	case "rwp":
		scn = world.BaselineScenario(world.RandomWaypoint, *seed)
	case "levy":
		scn = world.BaselineScenario(world.LevyWalk, *seed)
	default:
		var err error
		scn, err = world.PaperLand(*land, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}
	scn.Duration = *duration

	srv, err := server.New(server.Config{
		Addr:     *addr,
		Scenario: scn,
		Warp:     *warp,
		Password: *password,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slsim: hosting %q (%s land, cap %d) on %s, warp %gx, duration %ds\n",
		scn.Land.Name, scn.Land.Kind, scn.Land.EffectiveMaxAvatars(),
		srv.Addr(), *warp, scn.Duration)
	fmt.Printf("slsim: a full day takes %s of wall clock\n",
		time.Duration(float64(scn.Duration)/(*warp)*float64(time.Second)).Round(time.Second))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := srv.Run(ctx); err != nil && ctx.Err() == nil {
		log.Printf("slsim: %v", err)
	}
	fmt.Printf("slsim: stopped at sim time %d\n", srv.SimTime())
}

// runEstate simulates a preset estate on the shared clock and writes one
// trace file per region.
func runEstate(preset string, seed uint64, duration, tau int64, dir string) {
	var cfg world.EstateConfig
	switch preset {
	case "paper":
		cfg = world.PaperEstate(seed)
	case "mainland":
		cfg = world.MainlandEstate(seed)
	default:
		log.Fatalf("slsim: unknown estate %q (want paper or mainland)", preset)
	}
	if duration > 0 {
		cfg.Duration = duration
	}
	src, err := world.NewEstateSource(cfg, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slsim: simulating estate %q (%dx%d regions) for %ds at tau=%ds\n",
		cfg.Name, cfg.Rows, cfg.Cols, cfg.EffectiveDuration(), tau)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	trs, err := trace.CollectEstate(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	est := src.Estate()
	for i, tr := range trs {
		name := strings.Map(func(r rune) rune {
			switch r {
			case ' ', '(', ')', ',':
				return '_'
			}
			return r
		}, strings.ToLower(tr.Land))
		path := filepath.Join(dir, fmt.Sprintf("region%02d_%s.sltr", i, name))
		if err := trace.WriteFile(tr, path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slsim: %s -> %s (%d snapshots, %d unique)\n",
			tr.Land, path, len(tr.Snapshots), tr.UniqueUsers())
	}
	fmt.Printf("slsim: estate done in %s — %d border crossings, %d teleports, %d blocked handoffs\n",
		time.Since(start).Round(time.Millisecond), est.Crossings(), est.Teleports(), est.BlockedHandoffs())
}
