package slmob

// Façade-level parallel-vs-serial differential: the public WithSimWorkers
// knob must never change what RunEstate measures. The world- and
// server-level differentials pin raw avatar state; this one pins the
// paper's published metrics end to end through the analysis pipeline.

import (
	"context"
	"strings"
	"testing"

	"slmob/internal/core"
)

// estateAnalysisDigest folds an estate analysis into per-region and
// global content digests — any divergence in any metric shows up here.
func estateAnalysisDigest(t *testing.T, an *EstateAnalysis) string {
	t.Helper()
	var parts []string
	d, err := core.AnalysisDigest(an.Global)
	if err != nil {
		t.Fatal(err)
	}
	parts = append(parts, "global:"+d)
	for _, rg := range an.Regions {
		d, err := core.AnalysisDigest(rg)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, rg.Land+":"+d)
	}
	return strings.Join(parts, "\n")
}

// TestRunEstateParallelDifferential: RunEstate with any WithSimWorkers
// count produces an analysis bit-identical to the serial run.
func TestRunEstateParallelDifferential(t *testing.T) {
	run := func(workers int) string {
		est := PaperEstate(41)
		est.Duration = 1800
		an, err := RunEstate(context.Background(), est, WithSimWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if an.Global.Summary.Snapshots == 0 || an.Global.Summary.Unique == 0 {
			t.Fatalf("workers=%d produced an empty analysis: %+v", workers, an.Global.Summary)
		}
		return estateAnalysisDigest(t, an)
	}

	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != want {
			t.Errorf("WithSimWorkers(%d) analysis diverged from serial:\n got %.120s\nwant %.120s",
				workers, got, want)
		}
	}
}
