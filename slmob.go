// Package slmob is a from-scratch Go reproduction of "Characterizing User
// Mobility in Second Life" (La & Michiardi, SIGCOMM WOSN 2008): a
// metaverse simulator standing in for the 2008 Second Life service, the
// paper's two monitoring architectures (in-world sensors and an external
// crawler speaking a coarse-map wire protocol), the full temporal /
// spatial / graph-theoretic analysis behind every figure in the paper,
// and the trace-driven DTN replay the paper motivates.
//
// This package is the high-level façade. The primary API is the
// streaming pipeline: snapshots flow from a SnapshotSource (in-process
// simulation, TCP crawler, sensor collector, or trace file) into the
// incremental analyzer under a context, without ever materialising the
// trace. Typical use:
//
//	scn := slmob.ApfelLand(42)
//	scn.Duration = 6 * 3600
//	an, err := slmob.Run(ctx, scn, slmob.WithTau(10), slmob.WithRanges(10, 80))
//	fmt.Println(an.Summary, an.Contacts[slmob.BluetoothRange].CT.Median())
//
// Any other source analyses the same way:
//
//	fs, err := slmob.OpenTraceStream("dance.sltr")
//	an, err := slmob.AnalyzeStream(ctx, fs, slmob.WithSeatedRepair())
//
// Beyond single lands, the world shards into multi-region estates —
// grids of 256 m regions joined by walkable borders and teleports, as in
// the live service — analysed region-parallel with estate-global contact
// correctness across handoffs:
//
//	res, err := slmob.RunEstate(ctx, slmob.PaperEstate(42), slmob.WithRegionWorkers(4))
//	fmt.Println(res.Global.Summary, res.Regions[1].Summary)
//
// Every metric accumulator is resettable, mergeable, and serializable
// (the core Accumulator contract), which buys two orthogonal features.
// Windowed analytics slice any measurement into fixed time-of-day
// windows whose merge reproduces the whole-trace result bit-identically:
//
//	ws, err := slmob.RunWindows(ctx, scn, slmob.WithWindow(3600))
//	whole, err := ws.Merge() // == slmob.Run(ctx, scn), exactly
//
// And checkpoint/resume makes long runs crash-safe — the analyzer state
// and, for simulation sources, the full world state (avatar rng streams
// included) snapshot to one file, and a killed run resumes to an
// identical digest:
//
//	an, err := slmob.Run(ctx, scn, slmob.WithCheckpointEvery("run.ckpt", 1800))
//	an, err = slmob.Run(ctx, scn, slmob.WithResumeFrom("run.ckpt"))
//
// The batch entry points (CollectTrace, Analyze) remain as thin wrappers
// for workloads that genuinely need the materialised trace, such as the
// DTN replayer.
//
// The subsystems live in internal packages; everything a downstream user
// needs is re-exported here. DESIGN.md documents the architecture, the
// streaming pipeline, and the per-experiment index; EXPERIMENTS.md
// records paper-vs-measured values.
package slmob

import (
	"context"
	"math"

	"slmob/internal/core"
	"slmob/internal/dtn"
	"slmob/internal/experiment"
	"slmob/internal/stats"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// Measurement constants of the paper (§3).
const (
	// PaperTau is the snapshot period in seconds.
	PaperTau = core.PaperTau
	// BluetoothRange and WiFiRange are the two communication ranges.
	BluetoothRange = core.BluetoothRange
	WiFiRange      = core.WiFiRange
	// ZoneLength is the zone-occupation cell edge (Fig. 3).
	ZoneLength = core.PaperZoneLength
	// Day is the paper's 24-hour measurement duration in seconds.
	Day = world.DayDuration
)

// Re-exported core types.
type (
	// Scenario fully describes one land simulation.
	Scenario = world.Scenario
	// Estate describes a multi-region grid of lands with border crossing
	// and teleports — the sharded world RunEstate simulates.
	Estate = world.EstateConfig
	// EstateAnalysis holds per-region plus estate-global results.
	EstateAnalysis = core.EstateAnalysis
	// Trace is a τ-sampled mobility trace of one land.
	Trace = trace.Trace
	// Analysis holds every per-land metric of the paper.
	Analysis = core.Analysis
	// AnalysisConfig tunes the analysis pipeline.
	AnalysisConfig = core.Config
	// ContactSet holds CT/ICT/FT distributions for one range.
	ContactSet = core.ContactSet
	// Dist is a weighted empirical distribution — the representation of
	// every integer-valued metric (contact times, degrees, diameters,
	// zone occupancy). It answers Median/Quantile/CDF/CCDF queries
	// directly and Values() materialises the raw sample when needed.
	Dist = stats.Weighted
	// Figure is plot-ready data for one paper panel.
	Figure = core.Figure
	// LandRun bundles scenario, trace and analysis for one land.
	LandRun = experiment.LandRun
	// Report compares measured values against the paper.
	Report = experiment.Report
	// DTNConfig controls a trace-driven DTN replay.
	DTNConfig = dtn.Config
	// DTNResult summarises a DTN replay.
	DTNResult = dtn.Result
)

// The three calibrated paper lands and the synthetic-mobility baselines.
var (
	// ApfelLand is the out-door German newbie arena.
	ApfelLand = world.ApfelLand
	// DanceIsland is the in-door virtual discotheque.
	DanceIsland = world.DanceIsland
	// IsleOfView is the St. Valentine's event land.
	IsleOfView = world.IsleOfView
	// PaperLands returns all three, in the paper's order.
	PaperLands = world.PaperLands
	// PaperEstate joins the three paper lands into a 1×3 estate.
	PaperEstate = world.PaperEstate
	// MainlandEstate is the 4×4 sharding stress preset.
	MainlandEstate = world.MainlandEstate
	// CityEstate is the 8×8 city-scale stress preset (~2,400 concurrent
	// avatars) that the P4 benchmarks drive.
	CityEstate = world.CityEstate
	// SingleRegionEstate wraps one scenario as a 1×1 estate, which
	// reproduces the single-land pipeline exactly.
	SingleRegionEstate = world.SingleRegionEstate
	// BaselineScenario builds a random-waypoint or Lévy-walk comparison
	// scenario (experiment X3).
	BaselineScenario = world.BaselineScenario
)

// Mobility model identifiers for BaselineScenario.
const (
	POIGravity     = world.POIGravity
	RandomWaypoint = world.RandomWaypoint
	LevyWalk       = world.LevyWalk
)

// DTN forwarding schemes for Replay.
const (
	Epidemic       = dtn.Epidemic
	DirectDelivery = dtn.Direct
	TwoHopRelay    = dtn.TwoHop
	SprayAndWait   = dtn.SprayAndWait
)

// CollectTrace simulates the scenario and samples avatar positions every
// tau seconds, in process, materialising the whole trace. The network
// path — cmd/slsim plus cmd/slcrawl — produces equivalent traces over
// TCP.
//
// Deprecated: use Run for analysis (it streams in constant memory), or
// NewSource + CollectSource when the materialised trace itself is needed.
func CollectTrace(scn Scenario, tau int64) (*Trace, error) {
	return world.Collect(scn, tau)
}

// Analyze runs the paper's full analysis with default parameters
// (r ∈ {10, 80}, L = 20 m), re-walking the trace once per metric.
//
// Deprecated: use Run (simulation) or AnalyzeStream (any source) — the
// streaming pipeline computes the same Analysis in a single pass.
func Analyze(tr *Trace) (*Analysis, error) {
	return core.Analyze(tr, core.Config{})
}

// AnalyzeWith runs the analysis with explicit configuration.
//
// Deprecated: use AnalyzeStream with options (WithRanges, WithZoneSize,
// WithSeatedRepair, ...) over TraceSource(tr).
func AnalyzeWith(tr *Trace, cfg AnalysisConfig) (*Analysis, error) {
	return core.Analyze(tr, cfg)
}

// RunPaperLands simulates and analyses all three target lands for the
// given duration (use Day for the paper's 24 h).
//
// Deprecated: use RunPaperLandsContext, which streams and honours
// cancellation — or RunLands over PaperLands scenarios when option
// control (WithParallelLands, WithRanges, ...) is needed.
func RunPaperLands(seed uint64, duration int64) ([]*LandRun, error) {
	return experiment.RunLands(context.Background(), seed, duration, PaperTau)
}

// RunPaperLandsContext simulates and analyses the three target lands as
// concurrent streaming pipelines under a context.
func RunPaperLandsContext(ctx context.Context, seed uint64, duration int64) ([]*LandRun, error) {
	return experiment.RunLands(ctx, seed, duration, PaperTau)
}

// BuildReport compares three land runs against the paper's published
// values, row by row (see EXPERIMENTS.md).
func BuildReport(runs []*LandRun) (*Report, error) {
	return experiment.BuildReport(runs)
}

// BuildFigures renders every figure panel of the paper from three land
// runs.
func BuildFigures(runs []*LandRun) ([]*Figure, error) {
	return experiment.Figures(runs)
}

// Replay runs a DTN forwarding scheme over a trace.
func Replay(tr *Trace, cfg DTNConfig) (*DTNResult, error) {
	return dtn.Replay(tr, cfg)
}

// CompareDTN replays the trace under all four forwarding schemes.
func CompareDTN(tr *Trace, r float64, messages int, seed uint64) ([]*DTNResult, error) {
	return dtn.CompareProtocols(tr, r, messages, seed)
}

// Median is a convenience for summarising metric samples; it returns NaN
// for an empty sample.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.MustEmpirical(xs).Median()
}

// Quantile returns the p-quantile of a sample, NaN when empty.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.MustEmpirical(xs).Quantile(p)
}
