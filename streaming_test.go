package slmob

// Streaming/batch parity and cancellation tests for the pipeline API:
// the incremental Analyzer behind Run must produce the same Analysis as
// the batch core.Analyze path on every paper land, and a cancelled
// context must stop a run mid-stream.

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"slmob/internal/core"
)

// assertParity asserts the streaming/batch parity contract, labelling
// any difference with the land under test.
func assertParity(t *testing.T, land string, stream, batch *Analysis) {
	t.Helper()
	for _, d := range core.DiffAnalyses(stream, batch) {
		t.Errorf("%s: %s", land, d)
	}
}

// TestStreamingBatchParityPaperLands runs each paper land twice from the
// same seed — once through the batch path (materialise the trace, then
// core.Analyze) and once through the streaming pipeline (Run) — and
// asserts the two Analysis values are identical.
func TestStreamingBatchParityPaperLands(t *testing.T) {
	if testing.Short() {
		t.Skip("three-land parity run skipped in -short mode")
	}
	for _, scn := range PaperLands(7) {
		scn.Duration = 2 * 3600
		tr, err := CollectTrace(scn, PaperTau)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Analyze(tr)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := Run(context.Background(), scn)
		if err != nil {
			t.Fatal(err)
		}
		assertParity(t, scn.Land.Name, stream, batch)
	}
}

// TestAnalyzeStreamMatchesReplay: replaying a materialised trace through
// AnalyzeStream is the same as batch-analysing it.
func TestAnalyzeStreamMatchesReplay(t *testing.T) {
	scn := DanceIsland(11)
	scn.Duration = 1800
	tr, err := CollectTrace(scn, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := AnalyzeStream(context.Background(), TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, scn.Land.Name, stream, batch)
}

// TestRunCancelledContext: Run with an already-cancelled context returns
// ctx.Err() without doing the work.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scn := ApfelLand(1)
	if _, err := Run(ctx, scn); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunStopsMidStream: cancelling while a 24 h run is in flight stops
// the simulation promptly and surfaces ctx.Err().
func TestRunStopsMidStream(t *testing.T) {
	scn := ApfelLand(1) // full 24 h: takes far longer than the cancel delay
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, scn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run took %v to stop after cancellation", elapsed)
	}
}

// TestRunLandsParallelOption: the option bounds concurrency without
// changing results, and a cancelled context aborts the set.
func TestRunLandsParallelOption(t *testing.T) {
	scns := PaperLands(3)
	for i := range scns {
		scns[i].Duration = 600
	}
	serial, err := RunLands(context.Background(), scns, WithParallelLands(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunLands(context.Background(), scns, WithParallelLands(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 3 || len(parallel) != 3 {
		t.Fatalf("runs = %d/%d, want 3/3", len(serial), len(parallel))
	}
	for i := range serial {
		assertParity(t, serial[i].Land, parallel[i], serial[i])
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLands(ctx, scns); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunLands err = %v", err)
	}
}

// bareSource implements SnapshotSource without trace.Described, like a
// downstream user's custom producer would.
type bareSource struct{ left int }

func (s *bareSource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	if s.left == 0 {
		return Snapshot{}, io.EOF
	}
	s.left--
	return Snapshot{T: int64(10 * (3 - s.left))}, nil
}

// TestCollectSourceCustomSource: collecting from a source that cannot
// describe itself must still produce a valid, analysable trace, with
// WithLand/WithTau available for labelling.
func TestCollectSourceCustomSource(t *testing.T) {
	tr, err := CollectSource(context.Background(), &bareSource{left: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tau != PaperTau {
		t.Errorf("Tau = %d, want the paper default %d", tr.Tau, PaperTau)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("collected trace invalid: %v", err)
	}
	tr, err = CollectSource(context.Background(), &bareSource{left: 3},
		WithLand("custom"), WithTau(5))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Land != "custom" || tr.Tau != 5 {
		t.Errorf("land/tau = %q/%d, want custom/5", tr.Land, tr.Tau)
	}
}

// TestFileStreamRoundTrip: a trace written to disk streams back through
// OpenTraceStream with identical snapshots and analysis.
func TestFileStreamRoundTrip(t *testing.T) {
	scn := IsleOfView(9)
	scn.Duration = 900
	tr, err := CollectTrace(scn, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"roundtrip.sltr", "roundtrip.csv"} {
		path := t.TempDir() + "/" + name
		if err := WriteTraceFile(tr, path); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenTraceStream(path)
		if err != nil {
			t.Fatal(err)
		}
		info := fs.Info()
		if info.Land != tr.Land || info.Tau != tr.Tau {
			t.Errorf("%s: info = %+v", name, info)
		}
		n := 0
		for {
			_, err := fs.Next(context.Background())
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n++
		}
		fs.Close()
		if n != len(tr.Snapshots) {
			t.Errorf("%s: streamed %d snapshots, want %d", name, n, len(tr.Snapshots))
		}
	}
}
