package slmob

// Checkpoint/resume at the façade: one file captures the whole pipeline
// — the analyzer (windowed or not) and, when the source supports it, the
// producer's own state (the in-process simulation serialises every
// avatar with its rng stream, so a resumed run does not re-simulate the
// prefix). A run killed at any point between checkpoints resumes with
// WithResumeFrom and finishes with a digest identical to an
// uninterrupted run — pinned by the golden checkpoint gate.

import (
	"context"
	"fmt"
	"io"
	"os"

	"slmob/internal/core"
	"slmob/internal/snap"
	"slmob/internal/trace"
)

// runCheckpointVersion guards the combined run-checkpoint layout.
const runCheckpointVersion = 1

// ckptAnalyzer is the slice of the analyzer API the checkpoint hook
// needs; both *core.Analyzer and *core.WindowedAnalyzer satisfy it.
type ckptAnalyzer interface {
	ResumePoint() int64
	Checkpoint() ([]byte, error)
}

// encodeRunCheckpoint builds the combined blob.
func encodeRunCheckpoint(a ckptAnalyzer, src SnapshotSource) ([]byte, error) {
	blob, err := a.Checkpoint()
	if err != nil {
		return nil, err
	}
	var srcState []byte
	if st, ok := src.(trace.Stateful); ok {
		srcState, err = st.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("slmob: checkpoint source state: %w", err)
		}
	}
	_, windowed := a.(*core.WindowedAnalyzer)
	w := snap.NewWriter(core.KindRun)
	w.Uvarint(runCheckpointVersion)
	w.Bool(windowed)
	w.Bytes(blob)
	w.Bool(srcState != nil)
	w.Bytes(srcState)
	return w.Finish(), nil
}

// Checkpoint writes a combined run checkpoint of a manually driven
// pipeline: the analyzer's full state plus the source's, when the
// source implements state capture. Use WithCheckpointEvery for the
// periodic, atomic variant inside Run/AnalyzeStream.
func Checkpoint(w io.Writer, a *Analyzer, src SnapshotSource) error {
	blob, err := encodeRunCheckpoint(a, src)
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// CheckpointWindowed is Checkpoint for a windowed pipeline.
func CheckpointWindowed(w io.Writer, wa *WindowedAnalyzer, src SnapshotSource) error {
	blob, err := encodeRunCheckpoint(wa, src)
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// decodeRunCheckpoint splits a combined blob.
func decodeRunCheckpoint(data []byte) (analyzerBlob []byte, windowed bool, srcState []byte, err error) {
	r, err := snap.NewReader(data)
	if err != nil {
		return nil, false, nil, err
	}
	if r.Kind() != core.KindRun {
		return nil, false, nil, &snap.Error{Kind: snap.KindMalformed,
			Msg: fmt.Sprintf("payload kind %d is not a run checkpoint", r.Kind())}
	}
	if v := r.Uvarint(); r.Err() == nil && v != runCheckpointVersion {
		return nil, false, nil, &snap.Error{Kind: snap.KindVersion,
			Msg: fmt.Sprintf("run checkpoint version %d, want %d", v, runCheckpointVersion)}
	}
	windowed = r.Bool()
	analyzerBlob = r.Bytes()
	hasSrc := r.Bool()
	srcState = r.Bytes()
	if err := r.Err(); err != nil {
		return nil, false, nil, err
	}
	if !hasSrc {
		srcState = nil
	}
	return analyzerBlob, windowed, srcState, nil
}

// loadRunCheckpoint reads and splits a checkpoint file.
func loadRunCheckpoint(path string) (analyzerBlob []byte, windowed bool, srcState []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, nil, err
	}
	return decodeRunCheckpoint(data)
}

// restoreSource applies checkpointed source state when both sides
// support it; a stateless source is resumed by replay-and-skip instead.
func restoreSource(src SnapshotSource, srcState []byte) error {
	if srcState == nil {
		return nil
	}
	st, ok := src.(trace.Stateful)
	if !ok {
		// The checkpoint carries producer state but this source cannot
		// absorb it; replay-and-skip still resumes correctly.
		return nil
	}
	return st.RestoreState(srcState)
}

// writeCheckpointFile writes the blob atomically and durably: the data
// is fsynced before the rename, so neither a kill mid-write nor a power
// failure shortly after can leave a truncated file in place of the
// previous good checkpoint.
func writeCheckpointFile(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// checkpointHook returns the between-snapshots callback ConsumeWith
// invokes: every o.ckptEvery simulated seconds it writes a combined
// checkpoint, atomically, while both the analyzer and the source are
// quiescent.
func checkpointHook(a ckptAnalyzer, src SnapshotSource, o options) func(t int64) error {
	every := o.ckptEvery
	if every <= 0 {
		every = o.tau
		if every <= 0 {
			every = PaperTau
		}
	}
	next := (a.ResumePoint()/every + 1) * every
	return func(t int64) error {
		if t < next {
			return nil
		}
		blob, err := encodeRunCheckpoint(a, src)
		if err != nil {
			return err
		}
		if err := writeCheckpointFile(o.ckptPath, blob); err != nil {
			return err
		}
		next = (t/every + 1) * every
		return nil
	}
}

// runAnalyzer drives a plain analyzer under the run options: the core
// drain loop (which owns worker shutdown on every exit path), with the
// periodic-checkpoint hook armed when requested.
func runAnalyzer(ctx context.Context, a *core.Analyzer, src SnapshotSource, o options) (*Analysis, error) {
	if o.ckptPath == "" {
		return a.Consume(ctx, src)
	}
	return a.ConsumeWith(ctx, src, checkpointHook(a, src, o))
}

// runWindowedAnalyzer is runAnalyzer for the windowed pipeline.
func runWindowedAnalyzer(ctx context.Context, wa *core.WindowedAnalyzer, src SnapshotSource, o options) (*WindowSeries, error) {
	if o.ckptPath == "" {
		return wa.Consume(ctx, src)
	}
	return wa.ConsumeWith(ctx, src, checkpointHook(wa, src, o))
}

// resumeAnalyzer loads a plain-analyzer checkpoint and applies the
// source state.
func resumeAnalyzer(o options, src SnapshotSource) (*core.Analyzer, error) {
	blob, windowed, srcState, err := loadRunCheckpoint(o.resume)
	if err != nil {
		return nil, err
	}
	if windowed {
		return nil, fmt.Errorf("slmob: %s is a windowed checkpoint; resume it with RunWindows/AnalyzeWindows", o.resume)
	}
	a, err := core.RestoreAnalyzer(blob)
	if err != nil {
		return nil, err
	}
	if err := restoreSource(src, srcState); err != nil {
		return nil, err
	}
	return a, nil
}

// resumeWindowedAnalyzer is resumeAnalyzer for windowed checkpoints.
func resumeWindowedAnalyzer(o options, src SnapshotSource) (*core.WindowedAnalyzer, error) {
	blob, windowed, srcState, err := loadRunCheckpoint(o.resume)
	if err != nil {
		return nil, err
	}
	if !windowed {
		return nil, fmt.Errorf("slmob: %s is not a windowed checkpoint; resume it with Run/AnalyzeStream", o.resume)
	}
	wa, err := core.RestoreWindowedAnalyzer(blob)
	if err != nil {
		return nil, err
	}
	if err := restoreSource(src, srcState); err != nil {
		return nil, err
	}
	return wa, nil
}
