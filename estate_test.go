package slmob

// Estate façade tests: the 1×1 parity acceptance gate, multi-region
// behaviour through RunEstate, the per-region file round trip, and the
// option validation paths of Run / AnalyzeStream / RunLands.

import (
	"context"
	"errors"
	"testing"

	"slmob/internal/core"
	"slmob/internal/trace"
)

// TestRunEstateSingleRegionParity: analysing a 1×1 estate must reproduce
// the single-land pipeline — the region's Analysis is identical, and the
// estate-global view agrees on everything it computes (line-of-sight
// network metrics are intentionally per-region only).
func TestRunEstateSingleRegionParity(t *testing.T) {
	scn := DanceIsland(17)
	scn.Duration = 3600
	single, err := Run(context.Background(), scn)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEstate(context.Background(), SingleRegionEstate(scn))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(res.Regions))
	}
	assertParity(t, "1x1 region", res.Regions[0], single)

	g := res.Global
	if g.Summary != single.Summary {
		t.Errorf("global summary = %+v, want %+v", g.Summary, single.Summary)
	}
	for r, want := range single.Contacts {
		got := g.Contacts[r]
		if got == nil {
			t.Fatalf("global missing contact range %v", r)
		}
		if got.Pairs != want.Pairs || got.Censored != want.Censored ||
			got.NeverContacted != want.NeverContacted ||
			got.CT.N() != want.CT.N() || got.ICT.N() != want.ICT.N() || got.FT.N() != want.FT.N() {
			t.Errorf("global contacts r=%v = %+v, want %+v", r, got, want)
		}
	}
	if g.Zones.N() != single.Zones.N() {
		t.Errorf("global zones = %d samples, want %d", g.Zones.N(), single.Zones.N())
	}
	if len(g.Trips.TravelTime) != len(single.Trips.TravelTime) {
		t.Errorf("global trips = %d, want %d", len(g.Trips.TravelTime), len(single.Trips.TravelTime))
	}
	if g.Nets != nil {
		t.Errorf("global Nets = %v, want nil (per-region only)", g.Nets)
	}
}

// TestRunEstateMultiRegion: a migrating three-region estate produces a
// coherent two-level analysis — concurrency sums across regions, and
// avatars that visit several regions are counted once globally but once
// per region regionally.
func TestRunEstateMultiRegion(t *testing.T) {
	est := PaperEstate(31)
	est.Duration = 1800
	res, err := RunEstate(context.Background(), est, WithRegionWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estate != est.Name || len(res.Regions) != 3 {
		t.Fatalf("estate/regions = %q/%d", res.Estate, len(res.Regions))
	}
	sumConc, sumUnique := 0.0, 0
	for _, ra := range res.Regions {
		sumConc += ra.Summary.MeanConcurrent
		sumUnique += ra.Summary.Unique
	}
	g := res.Global.Summary
	if diff := g.MeanConcurrent - sumConc; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("global concurrency %v != regional sum %v", g.MeanConcurrent, sumConc)
	}
	if g.Unique >= sumUnique {
		t.Errorf("global unique %d not below regional sum %d: no avatar visited two regions?",
			g.Unique, sumUnique)
	}
	if res.Global.Contacts[BluetoothRange].CT.N() == 0 {
		t.Error("global contact distribution is empty")
	}
}

// TestRunEstateCancelledContext: estate runs honour cancellation.
func TestRunEstateCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunEstate(ctx, PaperEstate(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEstateFileRoundTrip: per-region traces written to disk analyse
// back through OpenEstateTraceStream with the same population view (the
// binary codec quantises positions to float32, so only position-free
// metrics are compared exactly).
func TestEstateFileRoundTrip(t *testing.T) {
	est := PaperEstate(23)
	est.Duration = 900
	src, err := NewEstateSource(est, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	live, err := AnalyzeEstateStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}

	src2, err := NewEstateSource(est, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := CollectEstateSource(context.Background(), src2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := make([]string, len(trs))
	for i, tr := range trs {
		paths[i] = dir + "/" + []string{"a", "b", "c"}[i] + ".sltr"
		if err := WriteTraceFile(tr, paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	efs, err := OpenEstateTraceStream(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer efs.Close()
	replayed, err := AnalyzeEstateStream(context.Background(), efs, WithRegionWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Estate != live.Estate {
		t.Errorf("estate label = %q, want %q (from file metadata)", replayed.Estate, live.Estate)
	}
	if replayed.Global.Summary != live.Global.Summary {
		t.Errorf("global summary = %+v, want %+v", replayed.Global.Summary, live.Global.Summary)
	}
	for i := range live.Regions {
		if replayed.Regions[i].Summary != live.Regions[i].Summary {
			t.Errorf("region %d summary = %+v, want %+v",
				i, replayed.Regions[i].Summary, live.Regions[i].Summary)
		}
	}
}

// TestOptionValidation exercises the façade's error branches: the
// invalid-parameter paths of Run and AnalyzeStream and the degenerate
// scenario list of RunLands.
func TestOptionValidation(t *testing.T) {
	ctx := context.Background()
	scn := DanceIsland(1)
	scn.Duration = 60

	if _, err := Run(ctx, scn, WithTau(-1)); err == nil {
		t.Error("Run accepted negative tau")
	}
	if _, err := Run(ctx, scn, WithTau(0)); err == nil {
		t.Error("Run accepted zero tau")
	}
	if _, err := Run(ctx, scn, WithRanges(10, -5)); err == nil {
		t.Error("Run accepted a non-positive range")
	}
	if _, err := Run(ctx, scn, WithZoneSize(-1)); err == nil {
		t.Error("Run accepted a negative zone size")
	}
	if _, err := Run(ctx, scn, WithLandSize(-256)); err == nil {
		t.Error("Run accepted a negative land size")
	}
	// A zero zone size is not an error: it selects the paper default.
	if an, err := Run(ctx, scn, WithZoneSize(0)); err != nil {
		t.Errorf("Run rejected the zero zone-size default: %v", err)
	} else if an.Zones.N() == 0 {
		t.Error("default zone size produced no zone samples")
	}

	tr, err := CollectTrace(scn, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeStream(ctx, TraceSource(tr), WithTau(-10)); err == nil {
		t.Error("AnalyzeStream accepted negative tau")
	}
	if _, err := AnalyzeStream(ctx, TraceSource(tr), WithRanges(0)); err == nil {
		t.Error("AnalyzeStream accepted a zero range")
	}

	// A malformed size in the source metadata is a decode error now,
	// not a silent fallback.
	tr.Meta["size"] = "not-a-number"
	if _, err := AnalyzeStream(ctx, TraceSource(tr)); err == nil {
		t.Error("AnalyzeStream accepted malformed size metadata")
	}
	if _, err := Analyze(tr); err == nil {
		t.Error("Analyze accepted malformed size metadata")
	}
	delete(tr.Meta, "size")

	// Nil and empty scenario lists are a no-op, not a crash.
	for _, scns := range [][]Scenario{nil, {}} {
		ans, err := RunLands(ctx, scns)
		if err != nil {
			t.Errorf("RunLands(%v scenarios) err = %v", len(scns), err)
		}
		if len(ans) != 0 {
			t.Errorf("RunLands(%v scenarios) = %d analyses", len(scns), len(ans))
		}
	}

	// Estate validation propagates through the façade.
	bad := PaperEstate(1)
	bad.Rows = 2 // 2×3 grid with only 3 regions
	if _, err := RunEstate(ctx, bad); err == nil {
		t.Error("RunEstate accepted a malformed grid")
	}
	if _, err := RunEstate(ctx, PaperEstate(1), WithTau(-1)); err == nil {
		t.Error("RunEstate accepted negative tau")
	}
}

// TestEstateReplayParity: the in-memory estate replay reproduces the
// live stream's analysis exactly (no codec quantisation involved).
func TestEstateReplayParity(t *testing.T) {
	est := PaperEstate(12)
	est.Duration = 600
	src, err := NewEstateSource(est, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	infos := src.Regions()
	trs, err := CollectEstateSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := trace.NewEstateReplay(infos, trs)
	if err != nil {
		t.Fatal(err)
	}
	fromReplay, err := AnalyzeEstateStream(context.Background(), replay, WithRegionWorkers(2))
	if err != nil {
		t.Fatal(err)
	}

	src2, err := NewEstateSource(est, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	live, err := AnalyzeEstateStream(context.Background(), src2, WithRegionWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range live.Regions {
		for _, d := range core.DiffAnalyses(fromReplay.Regions[i], live.Regions[i]) {
			t.Errorf("region %d: %s", i, d)
		}
	}
	for _, d := range core.DiffAnalyses(fromReplay.Global, live.Global) {
		t.Errorf("global: %s", d)
	}
}
