module slmob

go 1.24
